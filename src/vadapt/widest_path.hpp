#pragma once

#include <optional>
#include <vector>

#include "vadapt/problem.hpp"

// The adapted Dijkstra of paper §4.2.3: single-source *widest* paths on a
// weighted directed graph, where the width of a path is the minimum edge
// capacity along it and we maximize that minimum ("select widest").

namespace vw::vadapt {

struct WidestPathTree {
  std::vector<double> width;               ///< width[v]: best bottleneck from the source
  std::vector<std::optional<HostIndex>> parent;  ///< predecessor on the widest path
  HostIndex source = 0;

  /// Extract the widest path source -> dst; nullopt when unreachable
  /// (width <= 0 and no parent chain).
  std::optional<Path> path_to(HostIndex dst) const;
};

/// Single-source widest paths over an explicit capacity matrix
/// (capacity[u][v] <= 0 means "no usable edge").
WidestPathTree widest_paths(const std::vector<std::vector<double>>& capacity, HostIndex source);

/// Convenience: widest path between two vertices; nullopt when unreachable.
std::optional<Path> widest_path_between(const std::vector<std::vector<double>>& capacity,
                                        HostIndex src, HostIndex dst);

/// Bottleneck width of the widest path src -> dst; 0 when unreachable.
double widest_path_width(const std::vector<std::vector<double>>& capacity, HostIndex src,
                         HostIndex dst);

}  // namespace vw::vadapt
