#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "vadapt/problem.hpp"

// The adapted Dijkstra of paper §4.2.3: single-source *widest* paths on a
// weighted directed graph, where the width of a path is the minimum edge
// capacity along it and we maximize that minimum ("select widest").
//
// The search runs over an adjacency-list view (positive-capacity edges
// only) with a lazy-deletion heap — stale queue entries are skipped on pop
// instead of scanning a dense row per settled vertex. The dense-matrix
// entry points below build a view on the fly; callers that update
// capacities between queries (greedy routing, repeated adaptation rounds)
// should keep an AdjacencyView + WidestPathCache alive instead.

namespace vw::vadapt {

struct WidestPathTree {
  std::vector<double> width;               ///< width[v]: best bottleneck from the source
  std::vector<std::optional<HostIndex>> parent;  ///< predecessor on the widest path
  HostIndex source = 0;

  /// Extract the widest path source -> dst; nullopt when unreachable
  /// (width <= 0 and no parent chain).
  std::optional<Path> path_to(HostIndex dst) const;
};

/// One outgoing edge of the adjacency view.
struct CapacityEdge {
  HostIndex to = 0;
  double capacity = 0;  ///< strictly positive while the edge is present
};

/// Sparse adjacency view over a capacity matrix: only edges with strictly
/// positive capacity exist. Neighbor lists stay sorted by target vertex so
/// the relaxation order — and therefore tie-breaking — matches the dense
/// row scan it replaced. Updates are O(degree).
class AdjacencyView {
 public:
  explicit AdjacencyView(const std::vector<std::vector<double>>& capacity);

  std::size_t size() const { return out_.size(); }
  const std::vector<CapacityEdge>& out(HostIndex u) const { return out_[u]; }

  /// Set the capacity of edge u -> v; <= 0 removes the edge.
  void update(HostIndex u, HostIndex v, double capacity);

  /// Current capacity of u -> v (0 when absent).
  double capacity(HostIndex u, HostIndex v) const;

 private:
  std::vector<std::vector<CapacityEdge>> out_;
};

/// Memoizes per-source widest-path trees over a view. The greedy heuristic
/// queries the same sources repeatedly (mapping step: every source; routing
/// step: one per demand) — the cache collapses repeats until the underlying
/// capacities change and `invalidate` is called.
class WidestPathCache {
 public:
  explicit WidestPathCache(const AdjacencyView& view);

  /// The memoized tree for `source` (computed on first use).
  const WidestPathTree& tree(HostIndex source);

  /// Drop every memoized tree (call after AdjacencyView::update).
  void invalidate();

  /// Drop only the memoized tree rooted at `source`.
  void invalidate_source(HostIndex source);

  /// Scoped invalidation for a single edge-capacity change u -> v from
  /// `old_capacity` to `new_capacity` (values as seen by the view, i.e. <= 0
  /// means "edge absent"). Must be called BEFORE or AFTER the matching
  /// AdjacencyView::update — it only inspects the memoized trees, not the
  /// view. Drops exactly the trees whose widest-path structure the change
  /// can affect, so survivors remain bit-identical to a fresh recompute:
  ///
  ///  - decrease: only trees routing through u -> v (parent[v] == u) can
  ///    change — every other tree's paths avoid the edge and its widths are
  ///    reached without it.
  ///  - increase: a tree can only improve if the new edge offers a wider
  ///    route into v, i.e. min(width[u], new_capacity) >= width[v]. The >=
  ///    (not >) also drops equal-width ties, where a fresh recompute could
  ///    pick a different parent chain — survivors stay bit-identical.
  ///
  /// Returns the number of trees dropped.
  std::size_t invalidate_edge(HostIndex u, HostIndex v, double old_capacity,
                              double new_capacity);

  /// Whether a memoized tree for `source` is live.
  bool is_cached(HostIndex source) const;

  /// Number of live memoized trees.
  std::size_t cached_trees() const;

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  const AdjacencyView* view_;
  std::vector<std::unique_ptr<WidestPathTree>> trees_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Single-source widest paths over an adjacency view.
WidestPathTree widest_paths(const AdjacencyView& view, HostIndex source);

/// Single-source widest paths over an explicit capacity matrix
/// (capacity[u][v] <= 0 means "no usable edge").
WidestPathTree widest_paths(const std::vector<std::vector<double>>& capacity, HostIndex source);

/// Convenience: widest path between two vertices; nullopt when unreachable.
std::optional<Path> widest_path_between(const std::vector<std::vector<double>>& capacity,
                                        HostIndex src, HostIndex dst);

/// Bottleneck width of the widest path src -> dst; 0 when unreachable.
double widest_path_width(const std::vector<std::vector<double>>& capacity, HostIndex src,
                         HostIndex dst);

}  // namespace vw::vadapt
