#pragma once

#include <cstdint>
#include <vector>

#include "vadapt/problem.hpp"

// VTTIF traffic-matrix community detection for hierarchical warm-start
// decomposition: VMs that talk to each other a lot should be re-placed and
// re-routed together, VMs in different communities interact only through
// inter-cluster demands. Greedy modularity agglomeration (CNM-style): start
// from singleton communities and repeatedly take the merge with the largest
// positive modularity gain, subject to a cluster-size cap that keeps each
// intra-cluster subproblem small enough for a short SA burst.
//
// Deterministic by construction: candidate merges are scanned in ascending
// (cluster, cluster) order and ties broken toward the lexicographically
// smallest pair, so the same demand matrix always yields the same clusters.

namespace vw::vadapt {

struct ClusterParams {
  /// Stop merging into clusters larger than this (0 disables the cap).
  std::size_t max_cluster_size = 64;
};

struct ClusterAssignment {
  /// cluster_of[vm] -> cluster index (dense, 0-based).
  std::vector<std::uint32_t> cluster_of;
  /// Members of each cluster, ascending; clusters ordered by smallest member.
  std::vector<std::vector<VmIndex>> clusters;

  std::size_t size() const { return clusters.size(); }
};

/// Cluster `n_vms` VMs by the (undirected) traffic matrix implied by
/// `demands`. VMs with no traffic end up as singletons.
ClusterAssignment cluster_vms_by_traffic(const std::vector<Demand>& demands, std::size_t n_vms,
                                         const ClusterParams& params = {});

}  // namespace vw::vadapt
