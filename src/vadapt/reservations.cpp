#include "vadapt/reservations.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace vw::vadapt {

double ReservationPlan::rate_for(HostIndex from, HostIndex to) const {
  for (const EdgeReservation& e : edges) {
    if (e.from == from && e.to == to) return e.rate_bps;
  }
  return 0.0;
}

double ReservationPlan::total_rate() const {
  double total = 0;
  for (const EdgeReservation& e : edges) total += e.rate_bps;
  return total;
}

ReservationPlan plan_reservations(const std::vector<Demand>& demands,
                                  const Configuration& conf, double headroom) {
  VW_REQUIRE(conf.paths.size() == demands.size(),
             "plan_reservations: path/demand count mismatch (", conf.paths.size(), " vs ",
             demands.size(), ")");
  VW_REQUIRE(headroom >= 0, "plan_reservations: negative headroom ", headroom);

  std::map<std::pair<HostIndex, HostIndex>, double> per_edge;
  for (std::size_t d = 0; d < demands.size(); ++d) {
    const Path& p = conf.paths[d];
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      per_edge[{p[i], p[i + 1]}] += demands[d].rate_bps;
    }
  }

  ReservationPlan plan;
  for (const auto& [edge, rate] : per_edge) {
    EdgeReservation r;
    r.from = edge.first;
    r.to = edge.second;
    r.rate_bps = rate * (1.0 + headroom);
    if (r.rate_bps > 0) plan.edges.push_back(r);
  }
  return plan;
}

ReservationPlan plan_reservations(const CapacityGraph& graph,
                                  const std::vector<Demand>& demands,
                                  const Configuration& conf, double headroom) {
  ReservationPlan plan = plan_reservations(demands, conf, headroom);
  for (EdgeReservation& e : plan.edges) {
    e.rate_bps = std::min(e.rate_bps, graph.bandwidth(e.from, e.to));
  }
  std::erase_if(plan.edges, [](const EdgeReservation& e) { return e.rate_bps <= 0; });
  return plan;
}

}  // namespace vw::vadapt
