#include "vadapt/enumerate.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "util/check.hpp"
#include "vadapt/greedy.hpp"

namespace vw::vadapt {

std::uint64_t mapping_count(std::size_t n_hosts, std::size_t n_vms) {
  if (n_vms > n_hosts) return 0;
  std::uint64_t count = 1;
  for (std::size_t i = 0; i < n_vms; ++i) count *= static_cast<std::uint64_t>(n_hosts - i);
  return count;
}

namespace {

void enumerate_mappings(std::size_t n_hosts, std::size_t n_vms, std::vector<HostIndex>& mapping,
                        std::vector<bool>& used, std::size_t vm,
                        const std::function<void(const std::vector<HostIndex>&)>& visit) {
  if (vm == n_vms) {
    visit(mapping);
    return;
  }
  for (HostIndex h = 0; h < n_hosts; ++h) {
    if (used[h]) continue;
    used[h] = true;
    mapping[vm] = h;
    enumerate_mappings(n_hosts, n_vms, mapping, used, vm + 1, visit);
    used[h] = false;
  }
}

}  // namespace

ExhaustiveResult exhaustive_search(const CapacityGraph& graph,
                                   const std::vector<Demand>& demands, std::size_t n_vms,
                                   const Objective& objective, std::uint64_t max_mappings) {
  const std::size_t n_hosts = graph.size();
  VW_REQUIRE(n_vms <= n_hosts, "exhaustive_search: more VMs (", n_vms, ") than hosts (", n_hosts,
             ")");
  const std::uint64_t space = mapping_count(n_hosts, n_vms);
  VW_REQUIRE(space <= max_mappings, "exhaustive_search: solution space too large (", space,
             " mappings, cap ", max_mappings, ")");

  ExhaustiveResult result;
  bool have_best = false;

  std::vector<HostIndex> mapping(n_vms);
  std::vector<bool> used(n_hosts, false);
  enumerate_mappings(n_hosts, n_vms, mapping, used, 0,
                     [&](const std::vector<HostIndex>& m) {
                       ++result.mappings_examined;
                       Configuration conf;
                       conf.mapping = m;
                       conf.paths = greedy_paths(graph, demands, m);
                       const Evaluation ev = evaluate(graph, demands, conf, objective);
                       if (!have_best || ev.cost > result.best_evaluation.cost) {
                         have_best = true;
                         result.best = std::move(conf);
                         result.best_evaluation = ev;
                       }
                     });
  return result;
}

}  // namespace vw::vadapt
