#pragma once

#include <functional>

#include "sim/simulator.hpp"
#include "vnet/daemon.hpp"
#include "vttif/matrix.hpp"

// The per-daemon half of VTTIF: observes every Ethernet frame the daemon
// captures from its local VMs, accumulates a local traffic matrix, and
// periodically ships it toward the Proxy's global aggregator.

namespace vw::vttif {

class LocalVttif {
 public:
  /// Receives (reporting daemon's host, bytes accumulated this interval).
  using PushFn = std::function<void(net::NodeId, const TrafficMatrix&)>;

  LocalVttif(sim::Simulator& sim, vnet::VnetDaemon& daemon, SimTime update_period, PushFn push);

  LocalVttif(const LocalVttif&) = delete;
  LocalVttif& operator=(const LocalVttif&) = delete;

  const TrafficMatrix& pending() const { return pending_; }
  std::uint64_t updates_sent() const { return updates_; }
  vnet::VnetDaemon& daemon() { return daemon_; }

  /// Attach telemetry (vttif.local.pushes counter).
  void set_obs(const obs::Scope& scope) { c_pushes_ = scope.counter("vttif.local.pushes"); }

 private:
  void push_update();

  vnet::VnetDaemon& daemon_;
  PushFn push_;
  TrafficMatrix pending_;
  std::uint64_t updates_ = 0;
  obs::Counter* c_pushes_ = nullptr;
  sim::PeriodicTask task_;
};

}  // namespace vw::vttif
