#include "vttif/global.hpp"

#include <algorithm>
#include <string>

namespace vw::vttif {

GlobalVttif::GlobalVttif(sim::Simulator& sim, GlobalVttifParams params)
    : sim_(sim), params_(params), task_(sim, params.aggregation_period, [this] { close_slot(); }) {}

void GlobalVttif::set_obs(const obs::Scope& scope) {
  obs_ = scope;
  c_updates_ = scope.counter("vttif.updates.received");
  c_changes_ = scope.counter("vttif.changes.reported");
  g_edges_ = scope.gauge("vttif.topology.edges");
}

void GlobalVttif::update_from(net::NodeId, const TrafficMatrix& bytes) {
  ++updates_;
  obs::add(c_updates_);
  current_slot_.merge(bytes);
}

void GlobalVttif::close_slot() {
  window_.push_back(std::move(current_slot_));
  current_slot_ = TrafficMatrix{};
  while (window_.size() > params_.window_slots) window_.pop_front();

  const Topology topo = current_topology();
  if (topo.edges.empty()) return;

  const bool interesting =
      !last_reported_ || !topo.same_shape(*last_reported_) ||
      topo.max_relative_change(*last_reported_) > params_.change_threshold;
  if (!interesting) return;

  const SimTime now = sim_.now();
  if (last_reported_ && now - last_report_time_ < params_.reaction_cooldown) {
    return;  // damping: swallow rapid-fire changes to avoid oscillation
  }
  last_reported_ = topo;
  last_report_time_ = now;
  ++changes_;
  obs::add(c_changes_);
  obs::set(g_edges_, static_cast<double>(topo.edges.size()));
  obs_.instant("vttif.topology_change", "vttif",
               {{"edges", std::to_string(topo.edges.size())}});
  if (on_change_) on_change_(topo);
}

TrafficMatrix GlobalVttif::smoothed_rate_matrix() const {
  TrafficMatrix sum;
  for (const TrafficMatrix& slot : window_) sum.merge(slot);
  const double window_seconds =
      to_seconds(params_.aggregation_period) * static_cast<double>(std::max<std::size_t>(window_.size(), 1));
  if (window_seconds > 0) sum.scale(1.0 / window_seconds);
  return sum;
}

Topology GlobalVttif::current_topology() const {
  return infer_topology(smoothed_rate_matrix(), params_.prune_fraction);
}

}  // namespace vw::vttif
