#include "vttif/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace vw::vttif {

void TrafficMatrix::add(vnet::MacAddress src, vnet::MacAddress dst, double value) {
  // Traffic is a nonnegative quantity; a negative or NaN contribution would
  // silently skew every topology inferred from this matrix.
  VW_REQUIRE(value >= 0 && std::isfinite(value),
             "TrafficMatrix::add: bad traffic value ", value);
  if (value == 0) return;
  entries_[{src, dst}] += value;
}

double TrafficMatrix::at(vnet::MacAddress src, vnet::MacAddress dst) const {
  auto it = entries_.find({src, dst});
  return it == entries_.end() ? 0.0 : it->second;
}

void TrafficMatrix::merge(const TrafficMatrix& other) {
  for (const auto& [key, value] : other.entries_) entries_[key] += value;
}

void TrafficMatrix::scale(double factor) {
  VW_REQUIRE(factor >= 0 && std::isfinite(factor),
             "TrafficMatrix::scale: bad factor ", factor);
  for (auto& [key, value] : entries_) value *= factor;
}

double TrafficMatrix::max_entry() const {
  double m = 0;
  for (const auto& [key, value] : entries_) m = std::max(m, value);
  return m;
}

double TrafficMatrix::total() const {
  double t = 0;
  for (const auto& [key, value] : entries_) t += value;
  return t;
}

bool Topology::same_shape(const Topology& other) const {
  if (edges.size() != other.edges.size()) return false;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!(edges[i] == other.edges[i])) return false;
  }
  return true;
}

double Topology::max_relative_change(const Topology& other) const {
  double worst = 0;
  for (const TopologyEdge& e : edges) {
    auto it = std::find(other.edges.begin(), other.edges.end(), e);
    if (it == other.edges.end()) continue;
    const double base = std::max(it->rate_bps, 1.0);
    worst = std::max(worst, std::abs(e.rate_bps - it->rate_bps) / base);
  }
  return worst;
}

Topology infer_topology(const TrafficMatrix& rates, double prune_fraction) {
  VW_REQUIRE(prune_fraction >= 0 && prune_fraction <= 1,
             "infer_topology: prune_fraction outside [0,1]: ", prune_fraction);
  Topology topo;
  const double max = rates.max_entry();
  if (max <= 0) return topo;
  const double cutoff = prune_fraction * max;
  for (const auto& [key, value] : rates.entries()) {
    if (value < cutoff) continue;
    topo.edges.push_back(TopologyEdge{key.first, key.second, value, value / max});
  }
  // std::map iteration is already (src, dst)-sorted; same_shape and
  // max_relative_change both lean on that order.
  VW_AUDIT(std::is_sorted(topo.edges.begin(), topo.edges.end(),
                          [](const TopologyEdge& a, const TopologyEdge& b) {
                            return std::pair{a.src, a.dst} < std::pair{b.src, b.dst};
                          }),
           "infer_topology: edge list not (src, dst)-sorted");
  return topo;
}

}  // namespace vw::vttif
