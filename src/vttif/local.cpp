#include "vttif/local.hpp"

namespace vw::vttif {

LocalVttif::LocalVttif(sim::Simulator& sim, vnet::VnetDaemon& daemon, SimTime update_period,
                       PushFn push)
    : daemon_(daemon),
      push_(std::move(push)),
      task_(sim, update_period, [this] { push_update(); }) {
  daemon_.set_frame_observer([this](const vnet::EthernetFrame& frame) {
    // Accumulate bits so the aggregated sliding-window matrix reads in
    // bits/sec, matching the demand units VADAPT consumes.
    pending_.add(frame.src_mac, frame.dst_mac, 8.0 * static_cast<double>(frame.wire_bytes()));
  });
}

void LocalVttif::push_update() {
  if (pending_.empty()) return;
  ++updates_;
  obs::add(c_pushes_);
  if (push_) push_(daemon_.host(), pending_);
  pending_.clear();
}

}  // namespace vw::vttif
