#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "vnet/ethernet.hpp"

// Traffic matrices over VM MAC addresses: the raw material VTTIF aggregates
// and the application-topology representation it infers.

namespace vw::vttif {

/// Sparse directed matrix of per-VM-pair traffic (bytes or bytes/sec).
class TrafficMatrix {
 public:
  using Key = std::pair<vnet::MacAddress, vnet::MacAddress>;

  void add(vnet::MacAddress src, vnet::MacAddress dst, double value);
  double at(vnet::MacAddress src, vnet::MacAddress dst) const;
  void merge(const TrafficMatrix& other);
  void scale(double factor);
  void clear() { entries_.clear(); }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  double max_entry() const;
  double total() const;

  const std::map<Key, double>& entries() const { return entries_; }

 private:
  std::map<Key, double> entries_;
};

/// One inferred application-topology edge.
struct TopologyEdge {
  vnet::MacAddress src = 0;
  vnet::MacAddress dst = 0;
  double rate_bps = 0;          ///< smoothed traffic rate
  double normalized = 0;        ///< rate / max rate in the topology

  friend bool operator==(const TopologyEdge& a, const TopologyEdge& b) {
    return a.src == b.src && a.dst == b.dst;
  }
};

/// The recovered application communication topology.
struct Topology {
  std::vector<TopologyEdge> edges;  ///< sorted by (src, dst)

  bool same_shape(const Topology& other) const;
  /// Largest relative weight change on a shared edge vs `other` (0 when no
  /// shared edges).
  double max_relative_change(const Topology& other) const;
};

/// Normalize by the max entry and prune entries below `prune_fraction` of
/// the max — VTTIF's "normalization and pruning techniques".
Topology infer_topology(const TrafficMatrix& rates, double prune_fraction);

}  // namespace vw::vttif
