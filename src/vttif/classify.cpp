#include "vttif/classify.hpp"

#include <algorithm>
#include <set>

namespace vw::vttif {

namespace {

using Edge = std::pair<vnet::MacAddress, vnet::MacAddress>;
using EdgeSet = std::set<Edge>;

EdgeSet edge_set(const Topology& topo) {
  EdgeSet edges;
  for (const TopologyEdge& e : topo.edges) edges.insert({e.src, e.dst});
  return edges;
}

std::vector<vnet::MacAddress> vm_set(const EdgeSet& edges) {
  std::set<vnet::MacAddress> vms;
  for (const Edge& e : edges) {
    vms.insert(e.first);
    vms.insert(e.second);
  }
  return {vms.begin(), vms.end()};
}

EdgeSet all_to_all(const std::vector<vnet::MacAddress>& vms) {
  EdgeSet edges;
  for (vnet::MacAddress a : vms) {
    for (vnet::MacAddress b : vms) {
      if (a != b) edges.insert({a, b});
    }
  }
  return edges;
}

EdgeSet ring_uni(const std::vector<vnet::MacAddress>& vms) {
  EdgeSet edges;
  const std::size_t n = vms.size();
  for (std::size_t i = 0; i < n; ++i) edges.insert({vms[i], vms[(i + 1) % n]});
  return edges;
}

EdgeSet ring_bi(const std::vector<vnet::MacAddress>& vms) {
  EdgeSet edges = ring_uni(vms);
  const std::size_t n = vms.size();
  for (std::size_t i = 0; i < n; ++i) edges.insert({vms[(i + 1) % n], vms[i]});
  return edges;
}

EdgeSet chain(const std::vector<vnet::MacAddress>& vms) {
  EdgeSet edges;
  for (std::size_t i = 0; i + 1 < vms.size(); ++i) {
    edges.insert({vms[i], vms[i + 1]});
    edges.insert({vms[i + 1], vms[i]});
  }
  return edges;
}

EdgeSet star(const std::vector<vnet::MacAddress>& vms, std::size_t hub_index) {
  EdgeSet edges;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    if (i == hub_index) continue;
    edges.insert({vms[hub_index], vms[i]});
    edges.insert({vms[i], vms[hub_index]});
  }
  return edges;
}

EdgeSet mesh2d(const std::vector<vnet::MacAddress>& vms, std::size_t rows) {
  const std::size_t n = vms.size();
  const std::size_t cols = n / rows;
  EdgeSet edges;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t i = r * cols + c;
      auto connect = [&](std::size_t j) {
        edges.insert({vms[i], vms[j]});
        edges.insert({vms[j], vms[i]});
      };
      if (c + 1 < cols) connect(i + 1);
      if (r + 1 < rows) connect(i + cols);
    }
  }
  return edges;
}

}  // namespace

std::string to_string(PatternKind kind) {
  switch (kind) {
    case PatternKind::kAllToAll: return "all-to-all";
    case PatternKind::kRing: return "ring";
    case PatternKind::kRingUni: return "ring (unidirectional)";
    case PatternKind::kChain: return "chain";
    case PatternKind::kStar: return "star";
    case PatternKind::kMesh2D: return "2D mesh";
    case PatternKind::kIrregular: return "irregular";
  }
  return "?";
}

Classification classify_topology(const Topology& topology) {
  const EdgeSet edges = edge_set(topology);
  if (edges.empty()) return {PatternKind::kIrregular, 0};
  const std::vector<vnet::MacAddress> vms = vm_set(edges);
  const std::size_t n = vms.size();
  if (n < 2) return {PatternKind::kIrregular, 0};

  if (edges == all_to_all(vms)) {
    // n=2 and n=3 all-to-all coincide with chain/bidirectional ring; the
    // denser catalog entry wins only for n >= 4 where they differ.
    if (n == 2) return {PatternKind::kChain, 0};
    return {PatternKind::kAllToAll, 0};
  }
  if (n >= 3 && edges == ring_bi(vms)) return {PatternKind::kRing, 0};
  if (n >= 3 && edges == ring_uni(vms)) return {PatternKind::kRingUni, 0};
  if (edges == chain(vms)) return {PatternKind::kChain, 0};
  for (std::size_t hub = 0; hub < n; ++hub) {
    if (n >= 4 && edges == star(vms, hub)) return {PatternKind::kStar, hub};
  }
  for (std::size_t rows = 2; rows * 2 <= n; ++rows) {
    if (n % rows != 0) continue;
    const std::size_t cols = n / rows;
    if (cols < 2) continue;
    if (edges == mesh2d(vms, rows)) return {PatternKind::kMesh2D, rows};
  }
  return {PatternKind::kIrregular, 0};
}

}  // namespace vw::vttif
