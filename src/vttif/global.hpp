#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "net/packet.hpp"
#include "obs/scope.hpp"
#include "sim/simulator.hpp"
#include "vttif/matrix.hpp"

// The Proxy-side half of VTTIF: aggregates the per-daemon local matrices
// into a global traffic matrix, applies a sliding-window low-pass filter,
// recovers the application topology by normalization + pruning, and drives
// adaptation through a damped change-detection callback — "smoothed so that
// adaptation decisions made on its output cannot lead to oscillation".

namespace vw::vttif {

struct GlobalVttifParams {
  SimTime aggregation_period = seconds(1.0);  ///< window slot width
  std::size_t window_slots = 10;              ///< sliding window length
  double prune_fraction = 0.1;                ///< topology pruning threshold
  double change_threshold = 0.5;              ///< relative rate change that is "interesting"
  SimTime reaction_cooldown = seconds(5.0);   ///< min spacing of change callbacks
};

class GlobalVttif {
 public:
  using ChangeFn = std::function<void(const Topology&)>;

  GlobalVttif(sim::Simulator& sim, GlobalVttifParams params = {});

  GlobalVttif(const GlobalVttif&) = delete;
  GlobalVttif& operator=(const GlobalVttif&) = delete;

  /// Entry point for LocalVttif pushes (bytes accumulated at one daemon).
  void update_from(net::NodeId reporter, const TrafficMatrix& bytes);

  /// Low-pass-filtered global rate matrix (bytes/sec over the window).
  TrafficMatrix smoothed_rate_matrix() const;

  /// Application topology recovered from the smoothed matrix.
  Topology current_topology() const;

  /// Fires (rate-limited) when the inferred topology changes interestingly.
  void set_on_change(ChangeFn fn) { on_change_ = std::move(fn); }

  std::uint64_t updates_received() const { return updates_; }
  std::uint64_t changes_reported() const { return changes_; }

  /// Attach telemetry (vttif.updates/changes counters, topology-edge gauge,
  /// an instant trace event per reported change).
  void set_obs(const obs::Scope& scope);

 private:
  void close_slot();

  sim::Simulator& sim_;
  GlobalVttifParams params_;
  TrafficMatrix current_slot_;
  std::deque<TrafficMatrix> window_;
  std::optional<Topology> last_reported_;
  ChangeFn on_change_;
  SimTime last_report_time_ = 0;
  std::uint64_t updates_ = 0;
  std::uint64_t changes_ = 0;
  obs::Scope obs_;
  obs::Counter* c_updates_ = nullptr;
  obs::Counter* c_changes_ = nullptr;
  obs::Gauge* g_edges_ = nullptr;
  sim::PeriodicTask task_;
};

}  // namespace vw::vttif
