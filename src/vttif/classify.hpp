#pragma once

#include <string>
#include <vector>

#include "vttif/matrix.hpp"

// Topology classification: match an inferred application topology against
// the catalog of parallel-program communication patterns the VTTIF work
// (paper reference [2]) recognizes — n-neighbor rings, 2D meshes,
// all-to-all, star (master/worker) and chains. Classification is by exact
// edge-set match against generated reference patterns over the same VM set,
// ignoring weights (the topology's *shape* drives adaptation templates).

namespace vw::vttif {

enum class PatternKind {
  kAllToAll,
  kRing,        ///< bidirectional ring
  kRingUni,     ///< unidirectional ring
  kChain,       ///< bidirectional line
  kStar,        ///< hub-and-spoke (master/worker), bidirectional
  kMesh2D,      ///< 2D grid, 4-neighborhood, bidirectional
  kIrregular,   ///< nothing in the catalog matched
};

std::string to_string(PatternKind kind);

struct Classification {
  PatternKind kind = PatternKind::kIrregular;
  /// For kStar: the hub VM; for kMesh2D: rows (cols = n/rows). 0 otherwise.
  std::size_t parameter = 0;
};

/// Classify `topology` over the VM set it mentions. The VM set is inferred
/// from the edges (every endpoint); patterns are generated over that set in
/// sorted MAC order.
Classification classify_topology(const Topology& topology);

}  // namespace vw::vttif
