#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "util/time.hpp"
#include "wren/trace.hpp"

// Packet-train extraction — the heart of "free" measurement.
//
// Active SIC tools emit deliberately spaced probe trains; Wren instead scans
// the flow's naturally transmitted packets for maximal-length runs with
// consistent inter-departure spacing ("the new online tool scans for
// maximum-sized trains that can be formed using the collected traffic").
// Each such run yields an initial sending rate (ISR) sample.

namespace vw::wren {

/// One packet inside a train (what ACK matching needs).
struct TrainPacket {
  SimTime sent_at = 0;
  std::uint64_t seq_end = 0;  ///< stream offset one past this segment's last byte
  std::uint32_t wire_bytes = 0;
};

struct Train {
  net::FlowKey flow;
  std::vector<TrainPacket> packets;
  SimTime start_time = 0;  ///< departure of the first packet
  SimTime end_time = 0;    ///< departure of the last packet
  double isr_bps = 0;      ///< initial sending rate

  std::size_t length() const { return packets.size(); }
};

struct TrainParams {
  std::size_t min_length = 5;         ///< shortest train worth analyzing
  SimTime max_gap = millis(20);       ///< larger inter-departure gap breaks a train
  double spacing_tolerance = 4.0;     ///< max_gap_in_train <= tol * min_gap_in_train
};

/// Online extractor for one direction of one flow. Feed it outgoing data
/// packet records in timestamp order; it emits maximal consistent trains
/// through the callback.
class TrainExtractor {
 public:
  using TrainFn = std::function<void(const Train&)>;

  TrainExtractor(net::FlowKey flow, TrainParams params, TrainFn on_train);

  /// Feed one outgoing data record (must match the flow, be non-ACK, carry
  /// payload, and be in non-decreasing timestamp order).
  void add(const PacketRecord& record);

  /// Force evaluation of the currently pending run (e.g. at end of trace).
  void flush();

  std::uint64_t trains_emitted() const { return trains_; }

 private:
  void emit_if_valid();
  static double compute_isr(const std::vector<TrainPacket>& pkts);

  net::FlowKey flow_;
  TrainParams params_;
  TrainFn on_train_;
  std::vector<TrainPacket> current_;
  SimTime min_gap_ = 0;
  SimTime max_gap_seen_ = 0;
  std::uint64_t trains_ = 0;
};

}  // namespace vw::wren
