#include "wren/analyzer.hpp"

#include <algorithm>

namespace vw::wren {

OnlineAnalyzer::OnlineAnalyzer(net::Network& network, net::NodeId host, WrenParams params)
    : network_(network),
      host_(host),
      params_(params),
      trace_(network, host),
      task_(network.simulator(), params.collect_period, [this] { analyze_now(); }) {}

OnlineAnalyzer::FlowState& OnlineAnalyzer::flow_state(const net::FlowKey& key) {
  auto it = flows_.find(key);
  if (it != flows_.end()) return it->second;

  FlowState state;
  state.estimator = std::make_unique<SicEstimator>(params_.sic);
  SicEstimator* estimator = state.estimator.get();
  const net::NodeId peer = key.dst;
  estimator->set_on_observation([this, peer](const SicObservation& observation) {
    ++observations_total_;
    obs::add(c_observations_);
    if (observation.congested) obs::add(c_congested_);
    if (on_observation_) on_observation_(peer, observation);
  });
  state.extractor = std::make_unique<TrainExtractor>(
      key, params_.train, [this, estimator](const Train& train) {
        obs::add(c_trains_);
        obs::record(h_train_length_, static_cast<double>(train.length()));
        estimator->add_train(train);
      });
  return flows_.emplace(key, std::move(state)).first->second;
}

void OnlineAnalyzer::set_obs(const obs::Scope& scope) {
  trace_.set_obs(scope);
  c_collect_runs_ = scope.counter("wren.collect.runs");
  c_collect_records_ = scope.counter("wren.collect.records");
  c_trains_ = scope.counter("wren.trains.extracted");
  h_train_length_ = scope.histogram("wren.train.length");
  c_observations_ = scope.counter("wren.sic.observations");
  c_congested_ = scope.counter("wren.sic.congested");
}

void OnlineAnalyzer::analyze_now() {
  const SimTime now = network_.simulator().now();

  obs::add(c_collect_runs_);
  const std::vector<PacketRecord> records = trace_.collect();
  obs::add(c_collect_records_, records.size());
  for (const PacketRecord& rec : records) {
    if (rec.direction == net::TapDirection::kOutgoing && !rec.is_ack && rec.payload_bytes > 0) {
      FlowState& fs = flow_state(rec.flow);
      fs.extractor->add(rec);
      fs.last_outgoing = rec.timestamp;
    } else if (rec.direction == net::TapDirection::kIncoming && rec.is_ack &&
               rec.payload_bytes == 0) {
      // ACKs for one of our outgoing flows.
      auto it = flows_.find(rec.flow.reversed());
      if (it != flows_.end()) it->second.estimator->add_ack(rec.timestamp, rec.ack);
    }
  }

  for (auto& [key, fs] : flows_) {
    // A long-idle flow will never extend its pending run: evaluate it now.
    if (fs.last_outgoing != 0 && now - fs.last_outgoing > params_.train.max_gap) {
      fs.extractor->flush();
    }
    fs.estimator->process(now);

    // Fold flow-level state into the per-peer view.
    PeerState& peer = peer_state_[key.dst];
    if (auto est = fs.estimator->estimate_bps()) {
      if (!fs.estimator->window().empty()) {
        const SimTime obs_at = fs.estimator->window().back().time;
        if (obs_at >= peer.bandwidth_at) {
          peer.bandwidth_bps = est;
          peer.bandwidth_at = obs_at;
        }
      }
    }
    if (auto rtt = fs.estimator->min_rtt_seconds()) {
      if (!peer.min_rtt_s || *rtt < *peer.min_rtt_s) peer.min_rtt_s = rtt;
    }
    if (auto cap = fs.estimator->capacity_estimate_bps()) {
      if (!peer.capacity_bps || *cap > *peer.capacity_bps) peer.capacity_bps = cap;
    }
  }
}

std::optional<double> OnlineAnalyzer::available_bandwidth_bps(net::NodeId peer) const {
  auto it = peer_state_.find(peer);
  if (it == peer_state_.end() || !it->second.bandwidth_bps) return std::nullopt;
  if (network_.simulator().now() - it->second.bandwidth_at > params_.freshness) {
    return std::nullopt;
  }
  return it->second.bandwidth_bps;
}

std::optional<double> OnlineAnalyzer::latency_seconds(net::NodeId peer) const {
  auto it = peer_state_.find(peer);
  if (it == peer_state_.end() || !it->second.min_rtt_s) return std::nullopt;
  return *it->second.min_rtt_s / 2.0;
}

std::optional<double> OnlineAnalyzer::capacity_bps(net::NodeId peer) const {
  auto it = peer_state_.find(peer);
  if (it == peer_state_.end()) return std::nullopt;
  return it->second.capacity_bps;
}

std::vector<net::NodeId> OnlineAnalyzer::peers() const {
  std::vector<net::NodeId> out;
  out.reserve(peer_state_.size());
  for (const auto& [peer, state] : peer_state_) out.push_back(peer);
  return out;
}

}  // namespace vw::wren
