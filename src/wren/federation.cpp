#include "wren/federation.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace vw::wren {

// --- RegionMap ---------------------------------------------------------------

void RegionMap::assign(net::NodeId host, RegionId region) {
  VW_REQUIRE(region != kInvalidRegion, "RegionMap: cannot assign the invalid region");
  assignments_[host] = region;
  regions_.insert(region);
}

RegionId RegionMap::region_of(net::NodeId host) const {
  auto it = assignments_.find(host);
  return it == assignments_.end() ? kInvalidRegion : it->second;
}

std::vector<net::NodeId> RegionMap::hosts_in(RegionId region) const {
  std::vector<net::NodeId> out;
  for (const auto& [host, r] : assignments_) {
    if (r == region) out.push_back(host);
  }
  return out;
}

RegionMap RegionMap::round_robin(const std::vector<net::NodeId>& hosts, std::size_t regions) {
  VW_REQUIRE(regions >= 1, "RegionMap: need at least one region");
  RegionMap map;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    map.assign(hosts[i], static_cast<RegionId>(i % regions));
  }
  return map;
}

RegionMap RegionMap::chunked(const std::vector<net::NodeId>& hosts, std::size_t regions) {
  VW_REQUIRE(regions >= 1, "RegionMap: need at least one region");
  RegionMap map;
  if (hosts.empty()) return map;
  const std::size_t chunk = (hosts.size() + regions - 1) / regions;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    map.assign(hosts[i], static_cast<RegionId>(i / chunk));
  }
  return map;
}

// --- binary codec ------------------------------------------------------------

namespace {

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_f64(unsigned char* p, double v) { put_u64(p, std::bit_cast<std::uint64_t>(v)); }
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}
double get_f64(const unsigned char* p) { return std::bit_cast<double>(get_u64(p)); }

[[noreturn]] void corrupt(const std::string& what) {
  throw std::runtime_error("vw.fedsum.v1 parse error: " + what);
}

}  // namespace

std::vector<unsigned char> encode_summary(const FederationSummary& s) {
  const std::size_t size = kSummaryHeaderSize + s.entries.size() * kSummaryEntrySize +
                           s.aggregates.size() * kSummaryAggregateSize +
                           s.hosts.size() * kSummaryHostSize;
  std::vector<unsigned char> out(size, 0);
  unsigned char* p = out.data();
  put_u64(p + 0, kSummaryMagic);
  put_u32(p + 8, kSummaryVersion);
  put_u32(p + 12, s.region);
  put_u64(p + 16, static_cast<std::uint64_t>(s.created_at));
  put_u64(p + 24, s.seq);
  put_u64(p + 32, s.total_pairs);
  put_u32(p + 40, static_cast<std::uint32_t>(s.entries.size()));
  put_u32(p + 44, static_cast<std::uint32_t>(s.aggregates.size()));
  put_u32(p + 48, static_cast<std::uint32_t>(s.hosts.size()));
  p += kSummaryHeaderSize;
  for (const SummaryEntry& e : s.entries) {
    put_u32(p + 0, e.from);
    put_u32(p + 4, e.to);
    put_f64(p + 8, e.bandwidth_bps);
    put_f64(p + 16, e.latency_s);
    put_u64(p + 24, static_cast<std::uint64_t>(e.updated_at));
    p[32] = static_cast<unsigned char>((e.has_bandwidth ? 1 : 0) | (e.has_latency ? 2 : 0));
    p += kSummaryEntrySize;
  }
  for (const RegionAggregate& a : s.aggregates) {
    put_u32(p + 0, a.src_region);
    put_u32(p + 4, a.dst_region);
    put_u64(p + 8, a.pair_count);
    put_f64(p + 16, a.mean_bandwidth_bps);
    put_f64(p + 24, a.min_bandwidth_bps);
    put_f64(p + 32, a.mean_latency_s);
    p += kSummaryAggregateSize;
  }
  for (const HostSeen& h : s.hosts) {
    put_u32(p + 0, h.host);
    put_u64(p + 8, static_cast<std::uint64_t>(h.last_seen));
    p += kSummaryHostSize;
  }
  return out;
}

FederationSummary decode_summary(const unsigned char* data, std::size_t size) {
  if (size < kSummaryHeaderSize) {
    corrupt("truncated header: " + std::to_string(size) + " bytes, need " +
            std::to_string(kSummaryHeaderSize));
  }
  if (get_u64(data + 0) != kSummaryMagic) corrupt("bad magic");
  const std::uint32_t version = get_u32(data + 8);
  if (version != kSummaryVersion) corrupt("unknown version " + std::to_string(version));
  FederationSummary s;
  s.region = get_u32(data + 12);
  s.created_at = static_cast<SimTime>(get_u64(data + 16));
  s.seq = get_u64(data + 24);
  s.total_pairs = get_u64(data + 32);
  const std::uint32_t n_entries = get_u32(data + 40);
  const std::uint32_t n_aggregates = get_u32(data + 44);
  const std::uint32_t n_hosts = get_u32(data + 48);
  const std::size_t expected = kSummaryHeaderSize +
                               static_cast<std::size_t>(n_entries) * kSummaryEntrySize +
                               static_cast<std::size_t>(n_aggregates) * kSummaryAggregateSize +
                               static_cast<std::size_t>(n_hosts) * kSummaryHostSize;
  if (size < expected) {
    corrupt("truncated records: " + std::to_string(size) + " bytes, counts need " +
            std::to_string(expected));
  }
  if (size > expected) {
    corrupt("trailing bytes: " + std::to_string(size - expected) + " after the last record");
  }
  const unsigned char* p = data + kSummaryHeaderSize;
  s.entries.reserve(n_entries);
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    SummaryEntry e;
    e.from = get_u32(p + 0);
    e.to = get_u32(p + 4);
    e.bandwidth_bps = get_f64(p + 8);
    e.latency_s = get_f64(p + 16);
    e.updated_at = static_cast<SimTime>(get_u64(p + 24));
    e.has_bandwidth = (p[32] & 1) != 0;
    e.has_latency = (p[32] & 2) != 0;
    s.entries.push_back(e);
    p += kSummaryEntrySize;
  }
  s.aggregates.reserve(n_aggregates);
  for (std::uint32_t i = 0; i < n_aggregates; ++i) {
    RegionAggregate a;
    a.src_region = get_u32(p + 0);
    a.dst_region = get_u32(p + 4);
    a.pair_count = get_u64(p + 8);
    a.mean_bandwidth_bps = get_f64(p + 16);
    a.min_bandwidth_bps = get_f64(p + 24);
    a.mean_latency_s = get_f64(p + 32);
    s.aggregates.push_back(a);
    p += kSummaryAggregateSize;
  }
  s.hosts.reserve(n_hosts);
  for (std::uint32_t i = 0; i < n_hosts; ++i) {
    HostSeen h;
    h.host = get_u32(p + 0);
    h.last_seen = static_cast<SimTime>(get_u64(p + 8));
    s.hosts.push_back(h);
    p += kSummaryHostSize;
  }
  return s;
}

FederationSummary decode_summary(const std::vector<unsigned char>& bytes) {
  return decode_summary(bytes.data(), bytes.size());
}

std::string summary_to_hex(const FederationSummary& summary) {
  static const char* digits = "0123456789abcdef";
  const std::vector<unsigned char> bytes = encode_summary(summary);
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

FederationSummary summary_from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) corrupt("odd hex length " + std::to_string(hex.size()));
  std::vector<unsigned char> bytes(hex.size() / 2);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const auto nibble = [&](char c) -> unsigned {
      if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
      if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a') + 10;
      if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A') + 10;
      corrupt(std::string("non-hex digit '") + c + "'");
    };
    bytes[i] = static_cast<unsigned char>((nibble(hex[2 * i]) << 4) | nibble(hex[2 * i + 1]));
  }
  return decode_summary(bytes);
}

// --- daemon report codec -----------------------------------------------------

namespace {

std::string fmt_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, ptr);
}

}  // namespace

soap::XmlNode encode_wren_report_xml(net::NodeId reporter,
                                     const std::vector<PathReading>& readings) {
  soap::XmlNode msg;
  msg.name = "WrenReport";
  msg.attributes["reporter"] = std::to_string(reporter);
  for (const PathReading& r : readings) {
    soap::XmlNode& p = msg.add_child("peer");
    p.attributes["id"] = std::to_string(r.peer);
    if (r.bandwidth_bps) p.attributes["bw"] = fmt_double(*r.bandwidth_bps);
    if (r.latency_s) p.attributes["lat"] = fmt_double(*r.latency_s);
  }
  return msg;
}

net::NodeId parse_wren_report_xml(const soap::XmlNode& msg, std::vector<PathReading>& readings,
                                  std::uint64_t* rejected) {
  const auto reporter = static_cast<net::NodeId>(std::stoull(msg.attributes.at("reporter")));
  for (const soap::XmlNode& p : msg.children) {
    if (p.name != "peer") continue;
    PathReading r;
    r.peer = static_cast<net::NodeId>(std::stoull(p.attributes.at("id")));
    if (auto it = p.attributes.find("bw"); it != p.attributes.end()) {
      const double bw = std::stod(it->second);
      if (GlobalNetworkView::valid_measurement(bw)) {
        r.bandwidth_bps = bw;
      } else if (rejected != nullptr) {
        ++*rejected;
      }
    }
    if (auto it = p.attributes.find("lat"); it != p.attributes.end()) {
      const double lat = std::stod(it->second);
      if (GlobalNetworkView::valid_measurement(lat)) {
        r.latency_s = lat;
      } else if (rejected != nullptr) {
        ++*rejected;
      }
    }
    if (r.bandwidth_bps || r.latency_s) readings.push_back(r);
  }
  return reporter;
}

// --- RegionalProxy -----------------------------------------------------------

RegionalProxy::RegionalProxy(RegionId region, const RegionMap& region_map,
                             RegionalProxyParams params)
    : region_(region), region_map_(region_map), params_(params) {
  VW_REQUIRE(region != kInvalidRegion, "RegionalProxy: invalid region id");
  view_.set_staleness_horizon(params_.staleness_horizon);
}

std::size_t RegionalProxy::apply_report(net::NodeId reporter,
                                        const std::vector<PathReading>& readings, SimTime at) {
  note_host(reporter, at);
  std::size_t accepted = 0;
  for (const PathReading& r : readings) {
    bool any = false;
    if (r.bandwidth_bps) any |= view_.update_bandwidth(reporter, r.peer, *r.bandwidth_bps, at);
    if (r.latency_s) any |= view_.update_latency(reporter, r.peer, *r.latency_s, at);
    if (any) ++accepted;
  }
  if (g_view_pairs_ != nullptr) obs::set(g_view_pairs_, static_cast<double>(view_.entries().size()));
  return accepted;
}

void RegionalProxy::note_host(net::NodeId host, SimTime at) {
  SimTime& last = hosts_seen_[host];
  last = std::max(last, at);
}

void RegionalProxy::set_demand_weight(net::NodeId from, net::NodeId to, double weight) {
  if (weight <= 0) {
    demand_weights_.erase({from, to});
  } else {
    demand_weights_[{from, to}] = weight;
  }
}

void RegionalProxy::clear_demand_weights() { demand_weights_.clear(); }

FederationSummary RegionalProxy::build_summary(SimTime now, bool force_full) {
  FederationSummary s;
  s.region = region_;
  s.created_at = now;
  s.seq = next_seq_++;

  // Snapshot the fresh entries once; everything below derives from it.
  struct Candidate {
    std::pair<net::NodeId, net::NodeId> pair;
    const PathMeasurement* m;
    double weight;
  };
  std::vector<Candidate> fresh;
  fresh.reserve(view_.entries().size());
  for (const auto& [pair, m] : view_.entries()) {
    if (!view_.is_fresh(m)) continue;
    const auto w = demand_weights_.find(pair);
    fresh.push_back({pair, &m, w == demand_weights_.end() ? 0.0 : w->second});
  }
  s.total_pairs = fresh.size();

  // Top-k selection: demand-hot pairs first, then most recently updated;
  // pair order breaks ties so the choice is deterministic. Sampling off
  // (max_pairs == 0) exports everything — the serial-oracle configuration.
  const std::size_t k = (params_.summary_max_pairs == 0 || force_full)
                            ? fresh.size()
                            : std::min(params_.summary_max_pairs, fresh.size());
  std::vector<const Candidate*> chosen;
  chosen.reserve(fresh.size());
  for (const Candidate& c : fresh) chosen.push_back(&c);
  if (k < chosen.size()) {
    std::partial_sort(chosen.begin(), chosen.begin() + static_cast<std::ptrdiff_t>(k),
                      chosen.end(), [](const Candidate* a, const Candidate* b) {
                        if (a->weight != b->weight) return a->weight > b->weight;
                        if (a->m->updated_at != b->m->updated_at) {
                          return a->m->updated_at > b->m->updated_at;
                        }
                        return a->pair < b->pair;
                      });
    chosen.resize(k);
    // Re-emit in pair order: the export is a set, not a ranking.
    std::sort(chosen.begin(), chosen.end(),
              [](const Candidate* a, const Candidate* b) { return a->pair < b->pair; });
  }
  s.entries.reserve(chosen.size());
  for (const Candidate* c : chosen) {
    s.entries.push_back(SummaryEntry{c->pair.first, c->pair.second, c->m->bandwidth_bps,
                                     c->m->latency_s, c->m->updated_at, c->m->has_bandwidth,
                                     c->m->has_latency});
  }

  // Region-to-region rollups over ALL fresh entries, so the mass the top-k
  // suppressed still reaches the root in aggregate form.
  struct Acc {
    std::uint64_t n = 0;
    double bw_sum = 0, bw_min = 0, lat_sum = 0;
    std::uint64_t bw_n = 0, lat_n = 0;
  };
  std::map<std::pair<RegionId, RegionId>, Acc> acc;
  for (const Candidate& c : fresh) {
    const RegionId dst_region = region_map_.region_of(c.pair.second);
    Acc& a = acc[{region_, dst_region}];
    ++a.n;
    if (c.m->has_bandwidth) {
      if (a.bw_n == 0 || c.m->bandwidth_bps < a.bw_min) a.bw_min = c.m->bandwidth_bps;
      a.bw_sum += c.m->bandwidth_bps;
      ++a.bw_n;
    }
    if (c.m->has_latency) {
      a.lat_sum += c.m->latency_s;
      ++a.lat_n;
    }
  }
  for (const auto& [key, a] : acc) {
    RegionAggregate agg;
    agg.src_region = key.first;
    agg.dst_region = key.second;
    agg.pair_count = a.n;
    agg.mean_bandwidth_bps = a.bw_n > 0 ? a.bw_sum / static_cast<double>(a.bw_n) : 0;
    agg.min_bandwidth_bps = a.bw_min;
    agg.mean_latency_s = a.lat_n > 0 ? a.lat_sum / static_cast<double>(a.lat_n) : 0;
    s.aggregates.push_back(agg);
  }

  s.hosts.reserve(hosts_seen_.size());
  for (const auto& [host, at] : hosts_seen_) s.hosts.push_back(HostSeen{host, at});

  ++summaries_built_;
  entries_exported_ += s.entries.size();
  entries_suppressed_ += s.total_pairs - s.entries.size();
  obs::add(c_summaries_);
  obs::add(c_exported_, s.entries.size());
  obs::add(c_suppressed_, s.total_pairs - s.entries.size());
  return s;
}

void RegionalProxy::set_obs(const obs::Scope& scope) {
  c_summaries_ = scope.counter("wren.federation.region.summaries");
  c_exported_ = scope.counter("wren.federation.region.entries_exported");
  c_suppressed_ = scope.counter("wren.federation.region.entries_suppressed");
  g_view_pairs_ = scope.gauge("wren.federation.region.view_pairs");
  view_.set_obs(scope);
}

// --- FederationRoot ----------------------------------------------------------

FederationRoot::FederationRoot(GlobalNetworkView& root_view, const RegionMap& region_map)
    : view_(root_view), region_map_(region_map) {}

void FederationRoot::apply_summary(const FederationSummary& summary, SimTime now) {
  RegionState& state = region_state_[summary.region];
  if (state.last_seq != 0 && summary.seq > state.last_seq + 1) {
    // A control-plane window gap ate intermediate summaries; the current
    // snapshot supersedes their entries, but the loss is counted where
    // operators can see it.
    seq_gaps_ += summary.seq - state.last_seq - 1;
    obs::add(c_seq_gaps_, summary.seq - state.last_seq - 1);
  }
  if (summary.seq != 0) state.last_seq = std::max(state.last_seq, summary.seq);
  state.exported = summary.entries.size();
  state.total = summary.total_pairs;

  for (const SummaryEntry& e : summary.entries) {
    // Original regional timestamps: the staleness TTL is the cross-tier
    // consistency contract, so an entry must age from when it was measured,
    // not from when its summary arrived.
    if (e.has_bandwidth) view_.update_bandwidth(e.from, e.to, e.bandwidth_bps, e.updated_at);
    if (e.has_latency) view_.update_latency(e.from, e.to, e.latency_s, e.updated_at);
  }
  entries_applied_ += summary.entries.size();
  for (const RegionAggregate& a : summary.aggregates) {
    aggregates_[{a.src_region, a.dst_region}] = a;
  }
  if (host_seen_) {
    for (const HostSeen& h : summary.hosts) host_seen_(h.host, h.last_seen);
  }
  ++summaries_applied_;
  obs::add(c_summaries_);
  obs::add(c_entries_, summary.entries.size());
  obs::add(c_aggregates_, summary.aggregates.size());
  if (h_lag_ != nullptr && now >= summary.created_at) {
    obs::record(h_lag_, to_seconds(now - summary.created_at));
  }
  if (g_coverage_ != nullptr) obs::set(g_coverage_, coverage());
  if (g_regions_ != nullptr) obs::set(g_regions_, static_cast<double>(region_state_.size()));
}

std::optional<double> FederationRoot::aggregate_bandwidth(net::NodeId from,
                                                          net::NodeId to) const {
  const auto it =
      aggregates_.find({region_map_.region_of(from), region_map_.region_of(to)});
  if (it == aggregates_.end() || it->second.pair_count == 0) return std::nullopt;
  if (it->second.mean_bandwidth_bps <= 0) return std::nullopt;
  return it->second.mean_bandwidth_bps;
}

std::optional<double> FederationRoot::aggregate_latency(net::NodeId from, net::NodeId to) const {
  const auto it =
      aggregates_.find({region_map_.region_of(from), region_map_.region_of(to)});
  if (it == aggregates_.end() || it->second.pair_count == 0) return std::nullopt;
  if (it->second.mean_latency_s <= 0) return std::nullopt;
  return it->second.mean_latency_s;
}

double FederationRoot::coverage() const {
  if (region_state_.empty()) return 1.0;
  double sum = 0;
  for (const auto& [region, s] : region_state_) {
    sum += s.total == 0 ? 1.0
                        : static_cast<double>(s.exported) / static_cast<double>(s.total);
  }
  return sum / static_cast<double>(region_state_.size());
}

void FederationRoot::set_obs(const obs::Scope& scope) {
  c_summaries_ = scope.counter("wren.federation.summaries");
  c_entries_ = scope.counter("wren.federation.entries_applied");
  c_aggregates_ = scope.counter("wren.federation.aggregates_applied");
  c_seq_gaps_ = scope.counter("wren.federation.seq_gaps");
  h_lag_ = scope.histogram("wren.federation.lag_seconds");
  g_coverage_ = scope.gauge("wren.federation.coverage");
  g_regions_ = scope.gauge("wren.federation.regions");
}

// --- MeasurementScheduler ----------------------------------------------------

MeasurementScheduler::MeasurementScheduler(MeasurementSchedulerParams params)
    : params_(params) {
  VW_REQUIRE(params_.max_outstanding >= 1,
             "MeasurementScheduler: need a probe budget of at least 1");
}

std::size_t MeasurementScheduler::request_cold_pairs(
    const GlobalNetworkView& view, const std::vector<std::pair<net::NodeId, net::NodeId>>& needed,
    SimTime now) {
  std::size_t issued = 0;
  for (const auto& pair : needed) {
    if (pair.first == pair.second) continue;
    if (view.bandwidth_bps(pair.first, pair.second).has_value()) continue;  // warm
    if (outstanding_.contains(pair)) continue;
    const auto last = last_request_.find(pair);
    if (last != last_request_.end() && now - last->second < params_.request_cooldown) {
      ++suppressed_;
      obs::add(c_suppressed_);
      continue;
    }
    if (outstanding_.size() >= params_.max_outstanding) {
      ++suppressed_;
      obs::add(c_suppressed_);
      continue;
    }
    last_request_[pair] = now;
    outstanding_.insert(pair);
    ++requested_;
    ++issued;
    obs::add(c_requested_);
    if (g_outstanding_ != nullptr) {
      obs::set(g_outstanding_, static_cast<double>(outstanding_.size()));
    }
    if (request_) request_(pair.first, pair.second);
  }
  return issued;
}

void MeasurementScheduler::on_result(net::NodeId from, net::NodeId to) {
  if (outstanding_.erase({from, to}) == 0) return;
  ++completed_;
  obs::add(c_completed_);
  if (g_outstanding_ != nullptr) {
    obs::set(g_outstanding_, static_cast<double>(outstanding_.size()));
  }
}

void MeasurementScheduler::set_obs(const obs::Scope& scope) {
  c_requested_ = scope.counter("wren.federation.ondemand.requested");
  c_completed_ = scope.counter("wren.federation.ondemand.completed");
  c_suppressed_ = scope.counter("wren.federation.ondemand.suppressed");
  g_outstanding_ = scope.gauge("wren.federation.ondemand.outstanding");
}

}  // namespace vw::wren
