#include "wren/sic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace vw::wren {

SicEstimator::SicEstimator(SicParams params)
    : params_(params), smoothed_(params.smoothing_alpha) {}

void SicEstimator::add_ack(SimTime time, std::uint64_t ack) {
  // Keep only cumulative progress: duplicate ACKs signal loss, and a train
  // that suffered loss is not a clean SIC sample anyway (its RTT series is
  // polluted by retransmissions), so we match against first-coverage times.
  if (!acks_.empty() && ack <= acks_.back().ack) return;
  VW_REQUIRE(acks_.empty() || time >= acks_.back().time,
             "SicEstimator::add_ack: ACK timestamps regressed");
  acks_.push_back(AckRecord{time, ack});
}

void SicEstimator::add_train(const Train& train) {
  VW_REQUIRE(!train.packets.empty(), "SicEstimator::add_train: empty train");
  VW_REQUIRE(train.isr_bps > 0, "SicEstimator::add_train: non-positive ISR ", train.isr_bps);
  pending_.push_back(train);
}

std::optional<SicEstimator::AckRecord> SicEstimator::first_ack_covering(
    std::uint64_t seq_end) const {
  // acks_ is strictly increasing in .ack, so binary search applies.
  auto it = std::lower_bound(acks_.begin(), acks_.end(), seq_end,
                             [](const AckRecord& r, std::uint64_t v) { return r.ack < v; });
  if (it == acks_.end()) return std::nullopt;
  return *it;
}

void SicEstimator::process(SimTime now) {
  // first_ack_covering binary-searches acks_, which add_ack keeps strictly
  // increasing in .ack and non-decreasing in .time; scan-verify on audit.
  VW_AUDIT(std::adjacent_find(acks_.begin(), acks_.end(),
                              [](const AckRecord& a, const AckRecord& b) {
                                return b.ack <= a.ack || b.time < a.time;
                              }) == acks_.end(),
           "SicEstimator: ACK record ordering invariant broken");
  while (!pending_.empty()) {
    const Train& train = pending_.front();
    const std::uint64_t last_seq = train.packets.back().seq_end;
    const bool coverable = !acks_.empty() && acks_.back().ack >= last_seq;
    if (!coverable) {
      if (now - train.end_time > params_.pending_timeout) {
        ++trains_dropped_;
        pending_.pop_front();
        continue;
      }
      break;  // trains complete in order; wait for more ACKs
    }
    evaluate(train);
    pending_.pop_front();
  }

  // Trim ancient ACK records (nothing pending can reach back that far).
  const SimTime horizon = now - 2 * params_.pending_timeout;
  while (acks_.size() > 2 && acks_.front().time < horizon) acks_.pop_front();

  prune_window(now);
}

void SicEstimator::evaluate(const Train& train) {
  VW_ASSERT(!train.packets.empty(), "SicEstimator::evaluate: empty train");
  std::vector<double> rtts;
  std::vector<SimTime> ack_times;
  rtts.reserve(train.packets.size());
  std::optional<AckRecord> first_ack, last_ack;
  std::optional<AckRecord> prev_ack;
  for (std::size_t i = 0; i < train.packets.size(); ++i) {
    const TrainPacket& pkt = train.packets[i];
    const auto ack = first_ack_covering(pkt.seq_end);
    if (!ack || ack->time < pkt.sent_at) {
      ++trains_dropped_;  // coverage hole (reordering/limbo): not a clean sample
      return;
    }
    rtts.push_back(to_seconds(ack->time - pkt.sent_at));
    ack_times.push_back(ack->time);
    if (!min_rtt_s_ || rtts.back() < *min_rtt_s_) min_rtt_s_ = rtts.back();
    // Packet-pair capacity sample: distinct consecutive ACK arrivals within
    // a train reveal the bottleneck service rate. The rate uses the bytes
    // the second ACK newly covers (delayed ACKs cover two segments), scaled
    // to wire size. Pairs covering tiny segments (trailing fragments space
    // at the access-link rate) or big jumps (loss-recovery ACKs) don't
    // qualify.
    if (prev_ack && ack->time > prev_ack->time && ack->ack > prev_ack->ack &&
        pkt.wire_bytes >= 1200) {
      const auto covered = static_cast<double>(ack->ack - prev_ack->ack);
      const double wire_factor =
          static_cast<double>(pkt.wire_bytes) /
          std::max<double>(static_cast<double>(pkt.wire_bytes) - 40.0, 1.0);
      if (covered >= 1200 && covered <= 3.0 * 1460.0) {
        const double rate = covered * wire_factor * 8.0 / to_seconds(ack->time - prev_ack->time);
        if (!capacity_bps_ || rate > *capacity_bps_) capacity_bps_ = rate;
      }
    }
    prev_ack = ack;
    if (!first_ack) first_ack = ack;
    last_ack = ack;
  }

  // Trim trailing ACK-timer outliers: a delayed-ACK receiver acknowledges a
  // train's odd final segment only when its 40 ms timer fires, which would
  // fake both an RTT surge and a stretched ACK span. Drop trailing packets
  // whose ACK gap dwarfs the train's median gap.
  std::size_t n_used = rtts.size();
  {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < ack_times.size(); ++i) {
      if (ack_times[i] > ack_times[i - 1]) {
        gaps.push_back(to_seconds(ack_times[i] - ack_times[i - 1]));
      }
    }
    if (const auto med = median_of(std::move(gaps)); med && *med > 0) {
      while (n_used > params_.trend.min_samples + 1 &&
             to_seconds(ack_times[n_used - 1] - ack_times[n_used - 2]) > 5.0 * *med) {
        --n_used;
      }
    }
  }
  VW_ASSERT(n_used >= 1 && n_used <= rtts.size(),
            "SicEstimator: delayed-ACK trim out of range (n_used=", n_used, ")");
  if (n_used < rtts.size()) {
    rtts.resize(n_used);
    // Recompute the span endpoint to the last retained packet's ACK.
    last_ack = AckRecord{ack_times[n_used - 1], train.packets[n_used - 1].seq_end};
  }

  SicObservation obs;
  obs.time = last_ack->time;
  obs.isr_bps = train.isr_bps;
  obs.train_length = n_used;
  obs.congested = detect_trend(rtts, params_.trend) == Trend::kIncreasing;
  if (!obs.congested && min_rtt_s_) {
    double mean_rtt = 0;
    for (double r : rtts) mean_rtt += r;
    mean_rtt /= static_cast<double>(rtts.size());
    if (mean_rtt > params_.saturated_rtt_factor * *min_rtt_s_) obs.congested = true;
  }

  // ACK return rate: bytes after the first packet over the ACK arrival span.
  const SimTime ack_span = last_ack->time - first_ack->time;
  if (ack_span > 0) {
    std::uint64_t bits = 0;
    for (std::size_t i = 1; i < n_used; ++i) {
      bits += train.packets[i].wire_bytes * 8ull;
    }
    obs.ack_rate_bps = static_cast<double>(bits) / to_seconds(ack_span);
  } else {
    obs.ack_rate_bps = train.isr_bps;
  }

  window_.push_back(obs);
  ++observations_total_;
  if (auto raw = raw_estimate_bps()) smoothed_.add(*raw);
  if (on_observation_) on_observation_(obs);
}

void SicEstimator::prune_window(SimTime now) {
  while (window_.size() > params_.window_observations) window_.pop_front();
  while (!window_.empty() && now - window_.front().time > params_.window_age) {
    window_.pop_front();
  }
  VW_ENSURE(window_.size() <= params_.window_observations,
            "SicEstimator: observation window overflow");
}

std::optional<double> SicEstimator::raw_estimate_bps() const {
  // Fusion of the observation window:
  //  * an UNCONGESTED train at rate ISR proves avail >= ISR, so
  //    U = max uncongested ISR is a lower bound;
  //  * a CONGESTED train proves avail < ISR, so C = min congested ISR is an
  //    upper bound;
  //  * a congested train's ACK return rate `a` carries quantitative
  //    information: while the burst shares the drop-tail bottleneck with
  //    cross traffic of rate r, its packets drain at the arrival-
  //    proportional share a = c * ISR / (ISR + r). Inverting with the
  //    capacity estimated as the largest ISR ever observed (back-to-back
  //    bursts serialize at line rate) yields
  //        avail = c - r = c * (1 - ISR/a) + ISR,
  //    which we take as the median across congested trains and clamp into
  //    the proven [U, C] bracket.
  if (window_.empty()) return std::nullopt;
  double max_uncongested = 0;
  double min_congested = std::numeric_limits<double>::infinity();
  double max_isr = 0;
  for (const SicObservation& obs : window_) {
    max_isr = std::max(max_isr, obs.isr_bps);
    if (obs.congested) {
      min_congested = std::min(min_congested, obs.isr_bps);
    } else {
      max_uncongested = std::max(max_uncongested, obs.isr_bps);
    }
  }
  // Capacity: prefer the ACK-pair dispersion estimate (the bottleneck's
  // service rate, which can be far below the sender's access line rate);
  // fall back to the largest ISR when no dispersion sample exists.
  const double capacity_est = std::min(capacity_bps_.value_or(max_isr), max_isr);
  std::vector<double> inverted;
  for (const SicObservation& obs : window_) {
    if (!obs.congested || obs.ack_rate_bps <= 0) continue;
    // During a congested burst our packets drain at the arrival-
    // proportional share a = c * ISR / (ISR + r); invert for avail = c - r.
    inverted.push_back(capacity_est * (1.0 - obs.isr_bps / obs.ack_rate_bps) + obs.isr_bps);
  }

  // The available bandwidth "includes that consumed by the application
  // traffic used for the measurement" (paper §2.2), so the monitored flow's
  // own achieved rate — read off the cumulative ACK progression — is a hard
  // lower bound on any estimate.
  double achieved = 0;
  if (acks_.size() >= 2 && acks_.back().time - acks_.front().time >= seconds(1.0)) {
    // Only trust the achieved-rate floor over a meaningful span; a couple
    // of closely spaced ACKs would fabricate an absurd rate.
    achieved = static_cast<double>(acks_.back().ack - acks_.front().ack) * 8.0 /
               to_seconds(acks_.back().time - acks_.front().time);
  }

  double est;
  if (!inverted.empty()) {
    // Floor at a sliver of capacity: a saturated path has ~zero residual,
    // and reporting a tiny value keeps the smoothed estimate live (whereas
    // reporting nothing would freeze it at a stale level).
    const double lo = std::max({max_uncongested, achieved, 0.01 * capacity_est});
    const double hi = std::max(
        lo, std::isfinite(min_congested) ? min_congested : capacity_est);
    est = std::clamp(*median_of(std::move(inverted)), lo, hi);
  } else {
    est = std::max(max_uncongested, achieved);
  }
  if (est <= 0) return std::nullopt;
  return est;
}

std::optional<double> SicEstimator::estimate_bps() const {
  if (!smoothed_.has_value()) return std::nullopt;
  return smoothed_.value();
}

}  // namespace vw::wren
