#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "wren/trace.hpp"

// The vw.trace.v1 compact binary trace format.
//
// The text archive (wren/offline.hpp) is portable and greppable but costs
// ~80 bytes and a formatted parse per record; high-rate capture wants a
// fixed-size binary layout the writer thread can emit with one memcpy per
// record and tools can mmap-scan. Layout (everything little-endian,
// regardless of host byte order):
//
//   file header, 64 bytes:
//     [ 0] u64 magic          "VWTRACE1" (0x3145434152545756 LE)
//     [ 8] u32 version        1
//     [12] u32 record_size    48 (readers reject any other value)
//     [16] u32 host           capturing NodeId
//     [20] u32 shard          capture shard / NIC tag
//     [24] u64 record_count   records in the file (patched at finalize)
//     [32] u64 dropped        capture-time drops (ring overflow)
//     [40] u8[24] reserved    zero
//
//   record, 48 bytes:
//     [ 0] i64 timestamp      SimTime, nanoseconds
//     [ 8] u64 seq
//     [16] u64 ack
//     [24] u32 src            FlowKey.src
//     [28] u32 dst            FlowKey.dst
//     [32] u32 payload_bytes
//     [36] u32 wire_bytes
//     [40] u16 src_port
//     [42] u16 dst_port
//     [44] u8  direction      0 = outgoing, 1 = incoming
//     [45] u8  flags          bit0 is_ack, bit1 syn
//     [46] u16 reserved       zero
//
// Malformed input (short header, bad magic, unknown version, wrong record
// size, truncated record, record_count mismatch) throws std::runtime_error
// with a message naming the defect and file offset.

namespace vw::wren {

inline constexpr std::uint64_t kTraceMagic = 0x3145434152545756ull;  // "VWTRACE1"
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::size_t kTraceHeaderSize = 64;
inline constexpr std::size_t kTraceRecordSize = 48;

/// File-level capture metadata carried by the vw.trace.v1 header.
struct TraceFileHeader {
  net::NodeId host = net::kInvalidNode;  ///< capturing host (kInvalidNode for merged files)
  std::uint32_t shard = 0;               ///< capture shard / NIC tag
  std::uint64_t record_count = 0;
  std::uint64_t dropped = 0;  ///< records lost to ring overflow at capture time
};

/// Encode one record / header into its fixed-size wire image.
std::array<unsigned char, kTraceRecordSize> encode_record(const PacketRecord& r);
std::array<unsigned char, kTraceHeaderSize> encode_header(const TraceFileHeader& h);

/// Decode counterparts; `decode_record` trusts the caller for bounds.
PacketRecord decode_record(const unsigned char* buf);
TraceFileHeader decode_header(const unsigned char* buf);  ///< throws on bad magic/version

/// Write a complete vw.trace.v1 file: header (with record_count filled in)
/// followed by the records. Host/shard/dropped come from `header`.
void write_trace_binary(std::ostream& out, const TraceFileHeader& header,
                        const std::vector<PacketRecord>& records);

struct BinaryTrace {
  TraceFileHeader header;
  std::vector<PacketRecord> records;
};

/// Parse a vw.trace.v1 stream; throws std::runtime_error on any corruption
/// (bad magic, future version, wrong record size, truncation, count
/// mismatch, trailing bytes).
BinaryTrace read_trace_binary(std::istream& in);

/// Convenience: read just the records of a vw.trace.v1 file at `path`.
BinaryTrace read_trace_binary_file(const std::string& path);

}  // namespace vw::wren
