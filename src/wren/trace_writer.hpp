#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>

#include "net/network.hpp"
#include "obs/scope.hpp"
#include "util/mutex.hpp"
#include "util/spsc_ring.hpp"
#include "wren/trace_binary.hpp"

// The capture datapath: a host tap that persists every TCP header record to
// a vw.trace.v1 shard file, without ever blocking the simulation thread on
// file I/O (the exact-capture listener/writer split).
//
//   sim thread (producer)            writer thread (consumer)
//   ─────────────────────            ────────────────────────
//   tap callback → PacketRecord      batch-drain the ring
//        │ try_push                       │ encode + buffered fwrite
//        ▼                                ▼
//   ┌──────────── SpscRing ────────────────┐ → <dir>/trace_host<id>.vwtrace
//
// Overflow policy: kDropOldest (default) pops-and-discards the oldest
// buffered record so capture never stalls the simulation — drops are
// counted into the shard header and wren.trace.writer.dropped. kBlock
// spins the producer until the writer frees a slot: wall-clock slower, but
// the shard is guaranteed complete (what the replay differential asserts).
//
// finish() (or the destructor) removes the tap, joins the writer thread,
// drains whatever is still buffered, and patches the header's record/drop
// counts — a shard is a valid vw.trace.v1 file only after finish().

namespace vw::wren {

struct TraceWriterParams {
  std::size_t ring_capacity = 1 << 16;  ///< records buffered between threads
  std::size_t batch = 1024;             ///< max records drained per writer wakeup
  enum class Overflow : std::uint8_t {
    kDropOldest,  ///< never stall the sim; account drops in header + metrics
    kBlock,       ///< lossless capture; producer waits for the writer
  };
  Overflow overflow = Overflow::kDropOldest;
  std::uint32_t shard = 0;  ///< shard / NIC tag recorded in the file header
};

class TraceWriter {
 public:
  /// Taps `host` and streams its TCP header records to `path`. The file is
  /// created immediately; throws std::runtime_error when it cannot be.
  TraceWriter(net::Network& network, net::NodeId host, std::string path,
              TraceWriterParams params = {});
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Attach telemetry (wren.trace.writer.captured/dropped/written/bytes
  /// counters + wren.trace.writer.ring occupancy gauge). Instruments are
  /// shared across writers — per-shard numbers live in the shard headers.
  void set_obs(const obs::Scope& scope);

  /// Stop capturing, drain the ring, join the writer thread, and patch the
  /// shard header with final record/drop counts. Idempotent.
  void finish();

  net::NodeId host() const { return host_; }
  const std::string& path() const { return path_; }
  std::uint64_t records_captured() const { return captured_.load(std::memory_order_relaxed); }
  std::uint64_t records_dropped() const { return dropped_.load(std::memory_order_relaxed); }
  std::uint64_t records_written() const { return written_.load(std::memory_order_relaxed); }
  std::uint64_t bytes_written() const { return bytes_.load(std::memory_order_relaxed); }
  bool finished() const { return finished_; }

 private:
  void on_tap(const net::TapEvent& ev);
  void writer_loop();
  std::size_t drain_batch();  ///< pops up to params_.batch records; returns count
  void append_record(const PacketRecord& r);
  void patch_header();

  net::Network& network_;
  net::NodeId host_;
  std::string path_;
  TraceWriterParams params_;
  SpscRing<PacketRecord> ring_;
  std::ofstream out_;
  net::TapId tap_id_ = 0;
  bool tap_installed_ = false;
  bool finished_ = false;

  // Cross-thread statistics (relaxed: monotone counters read for reporting).
  std::atomic<std::uint64_t> captured_{0};  ///< producer
  std::atomic<std::uint64_t> dropped_{0};   ///< producer
  std::atomic<std::uint64_t> written_{0};   ///< consumer
  std::atomic<std::uint64_t> bytes_{0};     ///< consumer

  Mutex mu_;
  CondVar cv_;
  bool stop_ VW_GUARDED_BY(mu_) = false;
  std::thread writer_;

  // Atomic because set_obs() may run after the writer thread already
  // started (wiring happens post-construction); instruments are internally
  // thread-safe, only the pointer installation needs publication.
  std::atomic<obs::Counter*> c_captured_{nullptr};
  std::atomic<obs::Counter*> c_dropped_{nullptr};
  std::atomic<obs::Counter*> c_written_{nullptr};
  std::atomic<obs::Counter*> c_bytes_{nullptr};
  std::atomic<obs::Gauge*> g_ring_{nullptr};
};

}  // namespace vw::wren
