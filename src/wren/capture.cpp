#include "wren/capture.hpp"

#include <filesystem>
#include <utility>

namespace vw::wren {

CaptureSession::CaptureSession(net::Network& network, std::string dir, TraceWriterParams params)
    : network_(network), dir_(std::move(dir)), params_(params) {
  std::filesystem::create_directories(dir_);
}

CaptureSession::~CaptureSession() { finish(); }

TraceWriter& CaptureSession::add_host(net::NodeId host) {
  TraceWriterParams params = params_;
  params.shard = static_cast<std::uint32_t>(writers_.size());
  const std::string path =
      (std::filesystem::path(dir_) / ("trace_host" + std::to_string(host) + ".vwtrace"))
          .string();
  writers_.push_back(std::make_unique<TraceWriter>(network_, host, path, params));
  if (scope_.enabled()) writers_.back()->set_obs(scope_);
  return *writers_.back();
}

void CaptureSession::set_obs(const obs::Scope& scope) {
  scope_ = scope;
  for (auto& w : writers_) w->set_obs(scope);
}

void CaptureSession::finish() {
  for (auto& w : writers_) w->finish();
}

std::uint64_t CaptureSession::records_captured() const {
  std::uint64_t n = 0;
  for (const auto& w : writers_) n += w->records_captured();
  return n;
}

std::uint64_t CaptureSession::records_dropped() const {
  std::uint64_t n = 0;
  for (const auto& w : writers_) n += w->records_dropped();
  return n;
}

}  // namespace vw::wren
