#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "obs/scope.hpp"
#include "wren/trace_writer.hpp"

// One capture session = one directory of vw.trace.v1 shards, one TraceWriter
// (tap + SPSC ring + writer thread) per captured host. This is the unit the
// --capture <dir> flags on examples/benches create: every tapped host gets
// shard file <dir>/trace_host<id>.vwtrace whose shard tag is the add order,
// and the whole corpus merges back into one time-ordered trace with
// vwcap-extract.

namespace vw::wren {

class CaptureSession {
 public:
  /// Creates `dir` (and parents) if needed; shards are written inside it.
  CaptureSession(net::Network& network, std::string dir, TraceWriterParams params = {});
  ~CaptureSession();

  CaptureSession(const CaptureSession&) = delete;
  CaptureSession& operator=(const CaptureSession&) = delete;

  /// Start capturing `host` into its own shard. The shard tag is the
  /// number of previously added hosts.
  TraceWriter& add_host(net::NodeId host);

  /// Forwarded to every current and future writer.
  void set_obs(const obs::Scope& scope);

  /// Finalize every shard (drain rings, join writer threads, patch
  /// headers). Idempotent; also run by the destructor.
  void finish();

  const std::string& dir() const { return dir_; }
  const std::vector<std::unique_ptr<TraceWriter>>& writers() const { return writers_; }

  /// Aggregates across all shards (valid any time; exact after finish()).
  std::uint64_t records_captured() const;
  std::uint64_t records_dropped() const;

 private:
  net::Network& network_;
  std::string dir_;
  TraceWriterParams params_;
  obs::Scope scope_;
  std::vector<std::unique_ptr<TraceWriter>> writers_;
};

}  // namespace vw::wren
