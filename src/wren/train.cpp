#include "wren/train.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace vw::wren {

TrainExtractor::TrainExtractor(net::FlowKey flow, TrainParams params, TrainFn on_train)
    : flow_(flow), params_(params), on_train_(std::move(on_train)) {
  VW_REQUIRE(params_.min_length >= 3, "TrainExtractor: min_length < 3, got ", params_.min_length);
  VW_REQUIRE(params_.spacing_tolerance >= 1.0, "TrainExtractor: spacing_tolerance < 1, got ",
             params_.spacing_tolerance);
  VW_REQUIRE(params_.max_gap > 0, "TrainExtractor: max_gap must be positive");
}

double TrainExtractor::compute_isr(const std::vector<TrainPacket>& pkts) {
  // Bits carried after the first packet's departure, over the span between
  // first and last departures (the standard train-rate definition: the first
  // packet opens the window, subsequent bytes fill it).
  SimTime span = pkts.back().sent_at - pkts.front().sent_at;
  if (span <= 0) return 0.0;
  std::uint64_t bits = 0;
  for (std::size_t i = 1; i < pkts.size(); ++i) bits += pkts[i].wire_bytes * 8ull;
  return static_cast<double>(bits) / to_seconds(span);
}

void TrainExtractor::add(const PacketRecord& record) {
  if (record.is_ack && record.payload_bytes == 0) return;  // pure ACKs carry no data
  if (record.payload_bytes == 0) return;                   // SYN/FIN
  VW_REQUIRE(record.flow == flow_, "TrainExtractor: flow mismatch");

  const TrainPacket pkt{record.timestamp, record.seq + record.payload_bytes, record.wire_bytes};

  if (current_.empty()) {
    current_.push_back(pkt);
    min_gap_ = 0;
    max_gap_seen_ = 0;
    return;
  }

  // Records must arrive in departure order or every gap below is garbage.
  VW_REQUIRE(pkt.sent_at >= current_.back().sent_at,
             "TrainExtractor: record timestamps regressed (", pkt.sent_at, " < ",
             current_.back().sent_at, ")");
  const SimTime gap = pkt.sent_at - current_.back().sent_at;
  if (gap > params_.max_gap) {
    // Long silence: the run ends here.
    emit_if_valid();
    current_.clear();
    current_.push_back(pkt);
    min_gap_ = max_gap_seen_ = 0;
    return;
  }

  // Tentative new spacing bounds if this packet joins the run.
  const SimTime new_min = (current_.size() == 1) ? gap : std::min(min_gap_, gap);
  const SimTime new_max = (current_.size() == 1) ? gap : std::max(max_gap_seen_, gap);

  // Ratio test on the spacing spread; gaps are floored at 1 ns so that a
  // degenerate zero gap (instantaneous loopback) stays conservative.
  const auto lo = static_cast<double>(std::max<SimTime>(new_min, 1));
  const bool consistent = static_cast<double>(new_max) <= params_.spacing_tolerance * lo;

  if (consistent) {
    current_.push_back(pkt);
    min_gap_ = new_min;
    max_gap_seen_ = new_max;
    return;
  }

  // Spacing broke: emit the maximal run, then start a new run seeded with the
  // previous packet so adjacent trains share a boundary packet (no data is
  // wasted — "more measurements taken from less traffic").
  const TrainPacket seed = current_.back();
  emit_if_valid();
  current_.clear();
  current_.push_back(seed);
  current_.push_back(pkt);
  min_gap_ = max_gap_seen_ = gap;
}

void TrainExtractor::flush() {
  emit_if_valid();
  current_.clear();
  min_gap_ = max_gap_seen_ = 0;
}

void TrainExtractor::emit_if_valid() {
  if (current_.size() < params_.min_length) return;
  Train train;
  train.flow = flow_;
  train.packets = current_;
  train.start_time = current_.front().sent_at;
  train.end_time = current_.back().sent_at;
  train.isr_bps = compute_isr(current_);
  if (train.isr_bps <= 0) return;
  // What downstream SIC analysis assumes about every emitted train.
  VW_ENSURE(train.end_time > train.start_time, "TrainExtractor: emitted train spans no time");
  VW_AUDIT(std::is_sorted(train.packets.begin(), train.packets.end(),
                          [](const TrainPacket& a, const TrainPacket& b) {
                            return a.sent_at < b.sent_at;
                          }),
           "TrainExtractor: emitted train not in departure order");
  ++trains_;
  if (on_train_) on_train_(train);
}

}  // namespace vw::wren
