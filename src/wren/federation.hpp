#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "obs/scope.hpp"
#include "soap/xml.hpp"
#include "wren/view.hpp"

// The fleet-scale federated measurement plane (DESIGN.md §5i).
//
// The paper's Proxy keeps one flat GlobalNetworkView fed by every VNET
// daemon. That dies at fleet size: O(n^2) path entries, all-pairs
// freshness, a single report sink. This layer splits the plane into tiers,
// following SONoMA's service-oriented measurement sessions and WLCG's
// regional monitoring aggregation (PAPERS.md):
//
//   daemons --(WrenReport)--> RegionalProxy --(FederationSummary)--> root
//
// A RegionalProxy subscribes to the daemon report streams of its region and
// maintains a *partial* GlobalNetworkView covering only pairs its daemons
// reported. Periodically it exports a FederationSummary upward: the top-k
// hot pairs (ranked by VTTIF demand weight pushed down from the root, then
// recency), region-to-region aggregates over *all* fresh entries (so the
// suppressed mass is still represented), explicit coverage metadata, and
// the liveness evidence (hosts seen + timestamps) the root needs for its
// daemon-failure sweeps. Entry timestamps are preserved end to end, so the
// staleness-TTL contract (PR 4) is the cross-tier consistency contract: an
// entry is fresh at the root iff it would have been fresh had the daemon
// reported directly.
//
// Instead of keeping every pair fresh, a MeasurementScheduler requests
// targeted measurements (Wren passive refresh or active probes) only for
// the cold pairs VADAPT actually needs — SONoMA's on-demand session model.
//
// Serial oracle: with one region and sampling off (summary_max_pairs == 0)
// every entry is exported verbatim with its original timestamp, and the
// root view reproduces the flat view bit-identically
// (tests/federation_test.cpp pins this).

namespace vw::wren {

using RegionId = std::uint32_t;
inline constexpr RegionId kInvalidRegion = 0xffffffffu;

// --- region assignment -------------------------------------------------------

/// Host -> region assignment shared by every tier (and, through
/// vnet::VnetDaemon::set_region, by the daemons themselves).
class RegionMap {
 public:
  void assign(net::NodeId host, RegionId region);
  /// kInvalidRegion for unassigned hosts.
  RegionId region_of(net::NodeId host) const;
  /// Number of distinct regions assigned so far.
  std::size_t region_count() const { return regions_.size(); }
  std::vector<net::NodeId> hosts_in(RegionId region) const;
  const std::map<net::NodeId, RegionId>& assignments() const { return assignments_; }

  /// hosts[i] -> region i % regions (balanced, locality-blind).
  static RegionMap round_robin(const std::vector<net::NodeId>& hosts, std::size_t regions);
  /// Contiguous chunks of `hosts` (locality-preserving when the caller
  /// orders hosts by proximity, e.g. by BRITE attachment router).
  static RegionMap chunked(const std::vector<net::NodeId>& hosts, std::size_t regions);

 private:
  std::map<net::NodeId, RegionId> assignments_;
  std::set<RegionId> regions_;
};

// --- summary payload ---------------------------------------------------------

/// One exported directed-pair measurement (PathMeasurement + its pair).
struct SummaryEntry {
  net::NodeId from = net::kInvalidNode;
  net::NodeId to = net::kInvalidNode;
  double bandwidth_bps = 0;
  double latency_s = 0;
  SimTime updated_at = 0;
  bool has_bandwidth = false;
  bool has_latency = false;

  bool operator==(const SummaryEntry&) const = default;
};

/// Region-to-region rollup over every fresh entry of the exporting region
/// (including the pairs top-k suppressed), the root's fallback capacity for
/// pairs it holds no exact entry for.
struct RegionAggregate {
  RegionId src_region = kInvalidRegion;
  RegionId dst_region = kInvalidRegion;
  std::uint64_t pair_count = 0;
  double mean_bandwidth_bps = 0;
  double min_bandwidth_bps = 0;
  double mean_latency_s = 0;

  bool operator==(const RegionAggregate&) const = default;
};

/// Liveness evidence: a daemon the regional proxy heard from, and when.
struct HostSeen {
  net::NodeId host = net::kInvalidNode;
  SimTime last_seen = 0;

  bool operator==(const HostSeen&) const = default;
};

/// One upward export. `total_pairs` is the coverage denominator (fresh
/// entries held regionally); `entries.size()` the numerator.
struct FederationSummary {
  RegionId region = kInvalidRegion;
  SimTime created_at = 0;
  std::uint64_t seq = 0;  ///< per-region monotone; the root counts gaps
  std::uint64_t total_pairs = 0;
  std::vector<SummaryEntry> entries;
  std::vector<RegionAggregate> aggregates;
  std::vector<HostSeen> hosts;

  bool operator==(const FederationSummary&) const = default;
};

// --- binary summary codec (vw.fedsum.v1) -------------------------------------
//
// Summaries cross the control plane often and must stay cheap, so they ship
// as a compact little-endian binary image (hex-armored inside the XML
// control message), in the mold of the vw.trace.v1 format:
//
//   header, 64 bytes:
//     [ 0] u64 magic        "VWFEDSM1"
//     [ 8] u32 version      1
//     [12] u32 region
//     [16] i64 created_at
//     [24] u64 seq
//     [32] u64 total_pairs
//     [40] u32 entry_count
//     [44] u32 aggregate_count
//     [48] u32 host_count
//     [52] u8[12] reserved  zero
//   entry, 40 bytes:   u32 from, u32 to, f64 bw, f64 lat, i64 updated_at,
//                      u8 flags (bit0 has_bw, bit1 has_lat), u8[7] zero
//   aggregate, 40 B:   u32 src_region, u32 dst_region, u64 pair_count,
//                      f64 mean_bw, f64 min_bw, f64 mean_lat
//   host, 16 bytes:    u32 host, u32 reserved, i64 last_seen
//
// Malformed input (short header, bad magic, future version, truncated
// records, trailing bytes) throws std::runtime_error naming the defect.

inline constexpr std::uint64_t kSummaryMagic = 0x314D534445465756ull;  // "VWFEDSM1"
inline constexpr std::uint32_t kSummaryVersion = 1;
inline constexpr std::size_t kSummaryHeaderSize = 64;
inline constexpr std::size_t kSummaryEntrySize = 40;
inline constexpr std::size_t kSummaryAggregateSize = 40;
inline constexpr std::size_t kSummaryHostSize = 16;

std::vector<unsigned char> encode_summary(const FederationSummary& summary);
FederationSummary decode_summary(const unsigned char* data, std::size_t size);
FederationSummary decode_summary(const std::vector<unsigned char>& bytes);

/// Hex armor for riding XML attributes; from-hex throws on odd length or a
/// non-hex digit.
std::string summary_to_hex(const FederationSummary& summary);
FederationSummary summary_from_hex(std::string_view hex);

// --- daemon report codec -----------------------------------------------------

/// One per-peer reading inside a daemon's WrenReport control message.
struct PathReading {
  net::NodeId peer = net::kInvalidNode;
  std::optional<double> bandwidth_bps;
  std::optional<double> latency_s;
};

/// The "WrenReport" control-plane document daemons ship upstream (shared by
/// VirtuosoSystem and the federation scenarios, so both tiers parse one
/// format).
soap::XmlNode encode_wren_report_xml(net::NodeId reporter,
                                     const std::vector<PathReading>& readings);
/// Returns the reporter and appends the readings; throws on missing
/// attributes, and drops (counts into `rejected`, when non-null) readings
/// whose values fail GlobalNetworkView validation (non-finite / negative).
net::NodeId parse_wren_report_xml(const soap::XmlNode& msg, std::vector<PathReading>& readings,
                                  std::uint64_t* rejected = nullptr);

// --- the regional tier -------------------------------------------------------

struct RegionalProxyParams {
  /// Pairs exported per summary; 0 = export everything (sampling off, the
  /// serial-oracle configuration).
  std::size_t summary_max_pairs = 64;
  /// Forwarded to the partial view (same TTL contract as the root).
  SimTime staleness_horizon = 0;
};

/// The middle tier: maintains a partial GlobalNetworkView over its region's
/// daemon reports and builds summarized exports.
class RegionalProxy {
 public:
  RegionalProxy(RegionId region, const RegionMap& region_map, RegionalProxyParams params = {});

  RegionalProxy(const RegionalProxy&) = delete;
  RegionalProxy& operator=(const RegionalProxy&) = delete;

  RegionId region() const { return region_; }
  GlobalNetworkView& view() { return view_; }
  const GlobalNetworkView& view() const { return view_; }

  /// Attach the virtual clock (forwarded to the partial view's TTL logic).
  void set_clock(std::function<SimTime()> clock) { view_.set_clock(std::move(clock)); }

  /// Fold one daemon report into the partial view. Returns readings
  /// accepted (invalid values are rejected by the view and counted there).
  std::size_t apply_report(net::NodeId reporter, const std::vector<PathReading>& readings,
                           SimTime at);

  /// Liveness evidence for `host` (heartbeat or any report).
  void note_host(net::NodeId host, SimTime at);

  /// Demand hints pushed down from the root: weight > 0 marks a hot pair
  /// that must survive top-k selection.
  void set_demand_weight(net::NodeId from, net::NodeId to, double weight);
  void clear_demand_weights();
  std::size_t demand_weight_count() const { return demand_weights_.size(); }

  /// Build the next upward export (advances the summary sequence number).
  /// With `force_full`, sampling is bypassed once (full re-report after a
  /// detected control-plane window gap).
  FederationSummary build_summary(SimTime now, bool force_full = false);

  std::uint64_t summaries_built() const { return summaries_built_; }
  std::uint64_t entries_exported() const { return entries_exported_; }
  std::uint64_t entries_suppressed() const { return entries_suppressed_; }

  /// Attach telemetry (wren.federation.region.* counters/gauges).
  void set_obs(const obs::Scope& scope);

 private:
  RegionId region_;
  const RegionMap& region_map_;
  RegionalProxyParams params_;
  GlobalNetworkView view_;
  std::map<std::pair<net::NodeId, net::NodeId>, double> demand_weights_;
  std::map<net::NodeId, SimTime> hosts_seen_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t summaries_built_ = 0;
  std::uint64_t entries_exported_ = 0;
  std::uint64_t entries_suppressed_ = 0;
  obs::Counter* c_summaries_ = nullptr;
  obs::Counter* c_exported_ = nullptr;
  obs::Counter* c_suppressed_ = nullptr;
  obs::Gauge* g_view_pairs_ = nullptr;
};

// --- the root tier -----------------------------------------------------------

/// Folds FederationSummary exports into the root GlobalNetworkView and the
/// region-to-region aggregate table; tracks per-tier lag, coverage, and
/// summary sequence gaps.
class FederationRoot {
 public:
  /// Called for every liveness record a summary carries (host, last_seen).
  using HostSeenFn = std::function<void(net::NodeId, SimTime)>;

  FederationRoot(GlobalNetworkView& root_view, const RegionMap& region_map);

  FederationRoot(const FederationRoot&) = delete;
  FederationRoot& operator=(const FederationRoot&) = delete;

  void set_host_seen_fn(HostSeenFn fn) { host_seen_ = std::move(fn); }

  /// Apply one summary. Entries land in the root view with their original
  /// regional timestamps (the TTL consistency contract); aggregates replace
  /// this region's rows; liveness records flow to the host-seen hook.
  void apply_summary(const FederationSummary& summary, SimTime now);

  /// Region-level fallback for pairs the root holds no exact entry for.
  std::optional<double> aggregate_bandwidth(net::NodeId from, net::NodeId to) const;
  std::optional<double> aggregate_latency(net::NodeId from, net::NodeId to) const;

  const std::map<std::pair<RegionId, RegionId>, RegionAggregate>& aggregates() const {
    return aggregates_;
  }

  /// Exported/total ratio of the most recent summary per region, averaged;
  /// 1.0 when nothing was ever suppressed.
  double coverage() const;

  std::uint64_t summaries_applied() const { return summaries_applied_; }
  std::uint64_t entries_applied() const { return entries_applied_; }
  /// Summaries the per-region sequence numbers prove were lost in transit.
  std::uint64_t seq_gaps() const { return seq_gaps_; }

  /// Attach telemetry (wren.federation.* counters, lag histogram, coverage
  /// gauge).
  void set_obs(const obs::Scope& scope);

 private:
  struct RegionState {
    std::uint64_t last_seq = 0;
    std::uint64_t exported = 0;
    std::uint64_t total = 0;
  };

  GlobalNetworkView& view_;
  const RegionMap& region_map_;
  std::map<std::pair<RegionId, RegionId>, RegionAggregate> aggregates_;
  std::map<RegionId, RegionState> region_state_;
  HostSeenFn host_seen_;
  std::uint64_t summaries_applied_ = 0;
  std::uint64_t entries_applied_ = 0;
  std::uint64_t seq_gaps_ = 0;
  obs::Counter* c_summaries_ = nullptr;
  obs::Counter* c_entries_ = nullptr;
  obs::Counter* c_aggregates_ = nullptr;
  obs::Counter* c_seq_gaps_ = nullptr;
  obs::Histogram* h_lag_ = nullptr;
  obs::Gauge* g_coverage_ = nullptr;
  obs::Gauge* g_regions_ = nullptr;
};

// --- on-demand measurement sessions ------------------------------------------

struct MeasurementSchedulerParams {
  /// Re-request a still-cold pair no sooner than this.
  SimTime request_cooldown = seconds(10.0);
  /// Concurrent in-flight measurement sessions (probe budget).
  std::size_t max_outstanding = 8;
};

/// SONoMA-style on-demand sessions: instead of keeping all pairs fresh, the
/// planner hands the scheduler the pairs it is about to optimize over, and
/// the scheduler requests targeted measurements for the cold ones only.
class MeasurementScheduler {
 public:
  /// Issues one measurement session (e.g. starts an active probe).
  using RequestFn = std::function<void(net::NodeId from, net::NodeId to)>;

  explicit MeasurementScheduler(MeasurementSchedulerParams params = {});

  MeasurementScheduler(const MeasurementScheduler&) = delete;
  MeasurementScheduler& operator=(const MeasurementScheduler&) = delete;

  void set_request_fn(RequestFn fn) { request_ = std::move(fn); }

  /// Request sessions for every pair in `needed` that has no fresh
  /// bandwidth in `view`, subject to the per-pair cooldown and the
  /// outstanding budget. Returns how many sessions were issued.
  std::size_t request_cold_pairs(const GlobalNetworkView& view,
                                 const std::vector<std::pair<net::NodeId, net::NodeId>>& needed,
                                 SimTime now);

  /// A session completed (its measurement reached a view).
  void on_result(net::NodeId from, net::NodeId to);

  std::size_t outstanding() const { return outstanding_.size(); }
  std::uint64_t requested() const { return requested_; }
  std::uint64_t completed() const { return completed_; }
  /// Cold pairs skipped for budget or cooldown.
  std::uint64_t suppressed() const { return suppressed_; }

  /// Attach telemetry (wren.federation.ondemand.* counters + gauge).
  void set_obs(const obs::Scope& scope);

 private:
  MeasurementSchedulerParams params_;
  RequestFn request_;
  std::map<std::pair<net::NodeId, net::NodeId>, SimTime> last_request_;
  std::set<std::pair<net::NodeId, net::NodeId>> outstanding_;
  std::uint64_t requested_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t suppressed_ = 0;
  obs::Counter* c_requested_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_suppressed_ = nullptr;
  obs::Gauge* g_outstanding_ = nullptr;
};

// --- configuration (consumed by virtuoso::SystemConfig) ----------------------

struct FederationConfig {
  /// Off = the flat single-Proxy plane (pre-federation behavior).
  bool enabled = false;
  /// Daemon hosts are split round-robin into this many regions; each gets a
  /// RegionalProxy on its first host.
  std::size_t regions = 1;
  /// Regional proxies export summaries upward at this period.
  SimTime export_period = seconds(2.0);
  /// Top-k pairs per summary; 0 = export everything (sampling off).
  std::size_t summary_max_pairs = 64;
  /// Regional control planes listen on this port (root keeps 9001).
  std::uint16_t regional_port = 9002;
  /// On-demand measurement sessions for cold pairs the planner needs; when
  /// disabled, cold pairs fall back to aggregates/default capacity only.
  bool on_demand = true;
  MeasurementSchedulerParams scheduler;
};

}  // namespace vw::wren
