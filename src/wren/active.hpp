#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "transport/stack.hpp"
#include "transport/udp.hpp"
#include "util/trend.hpp"

// An ACTIVE self-induced-congestion prober, in the style of the pathload /
// pathChirp tools the paper cites ([11], [12]): it injects UDP packet
// trains at deliberately chosen rates, measures one-way-delay trends at the
// receiver, and binary-searches for the available bandwidth.
//
// This is the baseline Wren's "free" measurement competes against: the
// bench/active_vs_passive harness compares the two on accuracy and on the
// probe bytes injected into the network (Wren's is zero by construction).

namespace vw::wren {

struct ActiveProbeParams {
  std::uint32_t train_length = 24;
  std::uint32_t packet_bytes = 1200;
  double min_rate_bps = 1e6;
  double max_rate_bps = 1e9;      ///< search upper bound (access line rate)
  std::size_t iterations = 10;    ///< binary-search refinement steps
  /// Trains per probed rate; the congestion verdict is a majority vote
  /// (single trains misread transient queueing noise as congestion).
  std::size_t trains_per_rate = 3;
  SimTime inter_train_gap = millis(100);
  SimTime settle_after_train = millis(50);  ///< wait for stragglers
  /// Congestion verdict: least-squares net delay increase over the train
  /// must exceed this multiple of the residual noise (robust against the
  /// sawtooth patterns bursty cross traffic imprints on one-way delays).
  double slope_ratio_threshold = 2.0;
};

class ActiveProber {
 public:
  using DoneFn = std::function<void(double estimate_bps)>;

  /// Binds a probe sender on `src` and a receiver sink on `dst`.
  ActiveProber(transport::TransportStack& stack, net::NodeId src, net::NodeId dst,
               std::uint16_t dst_port, ActiveProbeParams params = {});

  ActiveProber(const ActiveProber&) = delete;
  ActiveProber& operator=(const ActiveProber&) = delete;

  /// Run the full binary search; `on_done` fires with the final estimate.
  void start(DoneFn on_done);

  /// Mid- or post-run estimate: the midpoint of the current search bracket.
  double estimate_bps() const { return 0.5 * (lo_ + hi_); }
  bool finished() const { return finished_; }

  /// Total probe payload + header bytes this prober injected (the cost of
  /// not being free).
  std::uint64_t bytes_injected() const { return bytes_injected_; }
  std::size_t trains_sent() const { return trains_sent_; }

 private:
  void send_train();
  void evaluate_train();

  transport::TransportStack& stack_;
  sim::Simulator& sim_;
  net::NodeId dst_;
  std::uint16_t dst_port_;
  ActiveProbeParams params_;
  std::shared_ptr<transport::UdpSocket> tx_;
  std::shared_ptr<transport::UdpSocket> rx_;
  double lo_;
  double hi_;
  std::size_t iteration_ = 0;
  std::size_t train_in_iteration_ = 0;
  std::size_t congested_votes_ = 0;
  double current_rate_ = 0;
  std::uint64_t train_seq_base_ = 0;
  std::vector<SimTime> send_times_;
  std::vector<double> owd_s_;  ///< one-way delays of the current train
  std::uint64_t bytes_injected_ = 0;
  std::size_t trains_sent_ = 0;
  bool finished_ = false;
  DoneFn on_done_;
};

}  // namespace vw::wren
