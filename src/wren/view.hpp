#pragma once

#include <map>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "util/time.hpp"

// The "bird's eye view of the physical network": pairwise available
// bandwidth and latency among the hosts running VNET daemons. Maintained at
// the Proxy from the per-host Wren reports that VNET daemons forward, and
// consumed by VADAPT as the capacity function of its optimization problem.

namespace vw::wren {

struct PathMeasurement {
  double bandwidth_bps = 0;
  double latency_s = 0;
  SimTime updated_at = 0;
  bool has_bandwidth = false;
  bool has_latency = false;
};

class GlobalNetworkView {
 public:
  /// Merge a bandwidth report for the directed pair (from, to).
  void update_bandwidth(net::NodeId from, net::NodeId to, double bps, SimTime at);
  /// Merge a latency report for the directed pair (from, to).
  void update_latency(net::NodeId from, net::NodeId to, double seconds, SimTime at);

  std::optional<double> bandwidth_bps(net::NodeId from, net::NodeId to) const;
  std::optional<double> latency_seconds(net::NodeId from, net::NodeId to) const;

  /// All directed pairs with any measurement (in practice only pairs whose
  /// VNET daemons exchanged messages have entries, as the paper notes).
  std::vector<std::pair<net::NodeId, net::NodeId>> measured_pairs() const;

  const std::map<std::pair<net::NodeId, net::NodeId>, PathMeasurement>& entries() const {
    return entries_;
  }

  /// Adjacency-list form consumed by VADAPT: (from, to, bandwidth_bps).
  std::vector<std::tuple<net::NodeId, net::NodeId, double>> bandwidth_adjacency() const;

 private:
  std::map<std::pair<net::NodeId, net::NodeId>, PathMeasurement> entries_;
};

}  // namespace vw::wren
