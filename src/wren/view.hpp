#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "obs/scope.hpp"
#include "util/time.hpp"
#include "wren/delta.hpp"

// The "bird's eye view of the physical network": pairwise available
// bandwidth and latency among the hosts running VNET daemons. Maintained at
// the Proxy from the per-host Wren reports that VNET daemons forward, and
// consumed by VADAPT as the capacity function of its optimization problem.
//
// Staleness: measurements age. With a staleness horizon configured (and a
// clock attached), entries older than the horizon stop being served —
// VADAPT falls back to the configured default capacity instead of
// optimizing on a dead link's last good reading. Entries can also be
// invalidated eagerly (e.g. when a migration across a pair fails or a
// daemon is declared dead).

namespace vw::wren {

struct PathMeasurement {
  double bandwidth_bps = 0;
  double latency_s = 0;
  SimTime updated_at = 0;
  bool has_bandwidth = false;
  bool has_latency = false;

  bool operator==(const PathMeasurement&) const = default;
};

class GlobalNetworkView {
 public:
  /// Merge a bandwidth report for the directed pair (from, to). Reports
  /// arrive off the network, so a poisoned value (NaN, Inf, negative —
  /// which would corrupt every VADAPT widest-path compare downstream) is
  /// rejected and counted rather than trusted: returns false and leaves the
  /// view untouched. The timestamp, by contrast, is caller-provided state
  /// and is VW_REQUIREd sane.
  bool update_bandwidth(net::NodeId from, net::NodeId to, double bps, SimTime at);
  /// Merge a latency report for the directed pair (from, to); same
  /// validation contract as update_bandwidth.
  bool update_latency(net::NodeId from, net::NodeId to, double seconds, SimTime at);

  /// The validation predicate both updates apply: finite and non-negative.
  static bool valid_measurement(double v);

  /// Reports rejected by the validation path since construction.
  std::uint64_t rejected_reports() const { return rejected_reports_; }

  std::optional<double> bandwidth_bps(net::NodeId from, net::NodeId to) const;
  std::optional<double> latency_seconds(net::NodeId from, net::NodeId to) const;

  /// All directed pairs with any fresh measurement (in practice only pairs
  /// whose VNET daemons exchanged messages have entries, as the paper notes).
  std::vector<std::pair<net::NodeId, net::NodeId>> measured_pairs() const;

  const std::map<std::pair<net::NodeId, net::NodeId>, PathMeasurement>& entries() const {
    return entries_;
  }

  /// Adjacency-list form consumed by VADAPT: (from, to, bandwidth_bps).
  /// Stale entries are excluded.
  std::vector<std::tuple<net::NodeId, net::NodeId, double>> bandwidth_adjacency() const;

  // --- staleness --------------------------------------------------------------
  /// Entries older than `horizon` are treated as unmeasured (0 disables).
  /// Takes effect only once a clock is attached.
  void set_staleness_horizon(SimTime horizon) { staleness_horizon_ = horizon; }
  SimTime staleness_horizon() const { return staleness_horizon_; }

  /// Attach the virtual clock used to age entries (typically the
  /// simulator's). Without a clock, staleness is never applied.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  /// Whether a measurement is within the staleness horizon right now.
  bool is_fresh(const PathMeasurement& m) const;

  /// Drop the entry for a directed pair (e.g. the path just failed).
  void invalidate(net::NodeId from, net::NodeId to);

  /// Drop every entry touching `host` (e.g. its daemon died). Returns the
  /// number of entries removed.
  std::size_t invalidate_host(net::NodeId host);

  /// Physically remove entries older than the horizon; returns how many
  /// were dropped. Queries already exclude them — this just bounds memory.
  ///
  /// NOTE: this mutates entries_, so any snapshot a caller took earlier
  /// (measured_pairs(), bandwidth_adjacency(), a CapacityGraph built from
  /// them) no longer reflects the view. Planners must re-snapshot after a
  /// sweep — VirtuosoSystem::adapt_now() refreshes liveness + expiry before
  /// building its capacity graph for exactly this reason.
  std::size_t expire_stale();

  /// Attach telemetry (wren.view.rejected_reports counter).
  void set_obs(const obs::Scope& scope);

  // --- delta tracking ---------------------------------------------------------
  /// Start accumulating a ViewDelta describing every subsequent change to
  /// the view (value-changing updates, invalidations, host drops, staleness
  /// expiries). Off by default — tracking costs a map insert per change.
  void enable_delta_tracking() { track_delta_ = true; }
  bool delta_tracking_enabled() const { return track_delta_; }

  /// Take the accumulated delta since the last drain (empty if tracking is
  /// disabled) and reset the accumulator.
  ViewDelta drain_delta() {
    ViewDelta out = std::move(delta_);
    delta_.clear();
    return out;
  }

  /// Peek at the accumulated delta without draining it.
  const ViewDelta& pending_delta() const { return delta_; }

 private:
  std::map<std::pair<net::NodeId, net::NodeId>, PathMeasurement> entries_;
  SimTime staleness_horizon_ = 0;
  std::function<SimTime()> clock_;
  std::uint64_t rejected_reports_ = 0;
  obs::Counter* c_rejected_ = nullptr;
  bool track_delta_ = false;
  ViewDelta delta_;
};

}  // namespace vw::wren
