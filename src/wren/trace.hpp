#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "obs/scope.hpp"
#include "util/time.hpp"

// Wren's kernel packet trace facility.
//
// In the paper this is a kernel extension that timestamps every packet
// arrival/departure with high precision and exposes the headers to a
// user-level collector. Here it taps the simulated host NIC: outgoing
// records carry the NIC serialization-completion timestamp (the precise
// wire departure time the SIC analysis needs), incoming records the
// delivery timestamp.

namespace vw::wren {

struct PacketRecord {
  SimTime timestamp = 0;
  net::TapDirection direction = net::TapDirection::kOutgoing;
  net::FlowKey flow;
  std::uint32_t payload_bytes = 0;
  std::uint32_t wire_bytes = 0;  ///< payload + headers (what the link carried)
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  bool is_ack = false;
  bool syn = false;
};

/// Per-host header trace with a bounded ring buffer, drained by the
/// user-level analyzer via collect() — mirroring Wren's kernel/user split.
class TraceFacility {
 public:
  /// Taps `host` on `network`. Only TCP packets are recorded (Wren analyzes
  /// TCP flows); UDP is ignored at the tap to keep overhead negligible.
  TraceFacility(net::Network& network, net::NodeId host, std::size_t capacity = 1 << 16);
  ~TraceFacility();

  TraceFacility(const TraceFacility&) = delete;
  TraceFacility& operator=(const TraceFacility&) = delete;

  /// Drain all records accumulated since the previous collect().
  std::vector<PacketRecord> collect();

  /// Attach telemetry (wren.trace.captured / wren.trace.dropped counters
  /// plus the wren.trace.buffered occupancy gauge, updated on every capture
  /// and drain so ring occupancy is observable between collect() calls).
  void set_obs(const obs::Scope& scope);

  net::NodeId host() const { return host_; }
  std::uint64_t records_captured() const { return captured_; }
  std::uint64_t records_dropped() const { return dropped_; }
  std::size_t buffered() const { return size_; }

 private:
  void on_tap(const net::TapEvent& ev);

  net::Network& network_;
  net::NodeId host_;
  std::size_t capacity_;
  net::TapId tap_id_;
  // Fixed-capacity ring, allocated once at construction. `head_` is the
  // oldest record; overflow overwrites it (drop-oldest, like the kernel
  // buffer Wren drains) without any deque node churn.
  std::vector<PacketRecord> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t captured_ = 0;
  std::uint64_t dropped_ = 0;
  obs::Counter* c_captured_ = nullptr;
  obs::Counter* c_dropped_ = nullptr;
  obs::Gauge* g_buffered_ = nullptr;
};

}  // namespace vw::wren
