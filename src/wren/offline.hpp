#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "wren/sic.hpp"
#include "wren/trace.hpp"
#include "wren/trace_binary.hpp"

// Offline Wren — the mode the original system shipped with before this
// paper's online extension: "the packet traces can be filtered for useful
// observations and transmitted to a remote repository for analysis".
//
// A TraceArchive serializes filtered packet-header records to a portable
// text format (the vw.trace.v1 binary codec in wren/trace_binary.hpp is the
// high-rate equivalent); OfflineAnalyzer replays an archive (or an
// in-memory record vector) through the same train-extraction + SIC
// machinery the online analyzer uses and emits the available-bandwidth
// observation series. merge_traces / apply_filter / match_traces are the
// corpus operations behind the vwcap-extract and vwcap-match tools.

namespace vw::wren {

/// Serialize records to the archive text format (one record per line).
void write_trace(std::ostream& out, const std::vector<PacketRecord>& records);

/// Parse an archive produced by write_trace; throws std::runtime_error on
/// malformed input (with the offending line number). Trailing garbage after
/// a record's last field is malformed too.
std::vector<PacketRecord> read_trace(std::istream& in);

/// Keep only the records Wren's analysis consumes: outgoing data packets
/// and incoming pure ACKs ("filtered for useful observations").
std::vector<PacketRecord> filter_useful(const std::vector<PacketRecord>& records);

/// Merge per-host capture shards into one time-ordered trace. Ties are
/// broken by shard order then record order within the shard, so the merge
/// is deterministic for a given shard list.
std::vector<PacketRecord> merge_traces(const std::vector<std::vector<PacketRecord>>& shards);

/// Record predicate used by vwcap-extract: unset fields match everything.
struct TraceFilter {
  std::optional<net::NodeId> src;
  std::optional<net::NodeId> dst;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  SimTime from = std::numeric_limits<SimTime>::min();  ///< inclusive
  SimTime to = std::numeric_limits<SimTime>::max();    ///< inclusive
  bool useful_only = false;  ///< apply filter_useful's predicate too

  bool matches(const PacketRecord& r) const;
};

std::vector<PacketRecord> apply_filter(const std::vector<PacketRecord>& records,
                                       const TraceFilter& filter);

// --- two-point frame matching (vwcap-match) ---------------------------------

/// One frame seen at both capture points.
struct MatchedFrame {
  net::FlowKey flow;
  std::uint64_t seq = 0;
  std::uint32_t payload_bytes = 0;
  SimTime sent_at = 0;     ///< timestamp at the `from` capture point
  SimTime arrived_at = 0;  ///< timestamp at the `to` capture point
  SimTime latency() const { return arrived_at - sent_at; }
};

struct MatchResult {
  std::vector<MatchedFrame> matched;  ///< ordered by sent_at
  std::size_t unmatched_from = 0;     ///< frames seen only at `from` (loss)
  std::size_t unmatched_to = 0;       ///< frames seen only at `to`

  /// Latency order statistic over matched frames, q in [0, 1]; 0 when empty.
  SimTime latency_quantile(double q) const;
  SimTime min_latency() const;
  SimTime max_latency() const;
  double mean_latency_ns() const;
};

/// Match data frames recorded at two capture points to compute per-hop
/// latency/loss: a frame's identity is (flow, seq, payload_bytes), and
/// duplicates (retransmissions) pair up in FIFO order. Only outgoing data
/// frames at `from` and incoming data frames at `to` participate — the
/// NIC-departure → NIC-delivery interval is exactly the path latency.
MatchResult match_traces(const std::vector<PacketRecord>& from,
                         const std::vector<PacketRecord>& to);

struct OfflineResult {
  /// Per-flow observation series, flattened and time-ordered.
  std::vector<std::pair<net::FlowKey, SicObservation>> observations;
  /// Final per-flow estimates.
  std::vector<std::pair<net::FlowKey, double>> estimates_bps;
  std::size_t flows_analyzed = 0;
  std::size_t records_consumed = 0;
};

/// Replay a trace through train extraction + SIC evaluation.
OfflineResult analyze_offline(const std::vector<PacketRecord>& records,
                              const TrainParams& train_params = {},
                              const SicParams& sic_params = {});

}  // namespace vw::wren
