#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "wren/sic.hpp"
#include "wren/trace.hpp"

// Offline Wren — the mode the original system shipped with before this
// paper's online extension: "the packet traces can be filtered for useful
// observations and transmitted to a remote repository for analysis".
//
// A TraceArchive serializes filtered packet-header records to a portable
// text format; OfflineAnalyzer replays an archive (or an in-memory record
// vector) through the same train-extraction + SIC machinery the online
// analyzer uses and emits the available-bandwidth observation series.

namespace vw::wren {

/// Serialize records to the archive text format (one record per line).
void write_trace(std::ostream& out, const std::vector<PacketRecord>& records);

/// Parse an archive produced by write_trace; throws std::runtime_error on
/// malformed input (with the offending line number).
std::vector<PacketRecord> read_trace(std::istream& in);

/// Keep only the records Wren's analysis consumes: outgoing data packets
/// and incoming pure ACKs ("filtered for useful observations").
std::vector<PacketRecord> filter_useful(const std::vector<PacketRecord>& records);

struct OfflineResult {
  /// Per-flow observation series, flattened and time-ordered.
  std::vector<std::pair<net::FlowKey, SicObservation>> observations;
  /// Final per-flow estimates.
  std::vector<std::pair<net::FlowKey, double>> estimates_bps;
  std::size_t flows_analyzed = 0;
  std::size_t records_consumed = 0;
};

/// Replay a trace through train extraction + SIC evaluation.
OfflineResult analyze_offline(const std::vector<PacketRecord>& records,
                              const TrainParams& train_params = {},
                              const SicParams& sic_params = {});

}  // namespace vw::wren
