#pragma once

#include <map>
#include <set>
#include <utility>

#include "net/packet.hpp"

// The view-delta protocol (DESIGN.md §5j): a compact diff of a
// GlobalNetworkView between two drain points, consumed by the warm-start
// optimizer so re-adaptation work scales with what *changed*, not with the
// size of the view.
//
// A delta is an accumulator, not a log: repeated updates to the same
// directed pair collapse into the final value, and an invalidation
// supersedes any earlier value changes for that pair (the consumer applies
// `invalidated` first — reverting the pair to its fallback capacity — and
// the changed values after, so a drop-then-remeasure sequence lands on the
// remeasured value). Pairs are keyed in an ordered map so consumers iterate
// deterministically.
//
// Header-only on purpose: vadapt consumes deltas without linking vw_wren.

namespace vw::wren {

/// The collapsed state of one changed directed pair.
struct PairDelta {
  bool bandwidth_changed = false;
  double bandwidth_bps = 0;
  bool latency_changed = false;
  double latency_s = 0;
  /// The entry was dropped (migration failure, daemon death, staleness
  /// expiry) at some point since the last drain.
  bool invalidated = false;

  bool operator==(const PairDelta&) const = default;
};

/// Diff of a GlobalNetworkView since the last drain.
class ViewDelta {
 public:
  using PairKey = std::pair<net::NodeId, net::NodeId>;

  /// Record a bandwidth change for (from, to); later values overwrite.
  void note_bandwidth(net::NodeId from, net::NodeId to, double bps) {
    PairDelta& d = pairs_[{from, to}];
    d.bandwidth_changed = true;
    d.bandwidth_bps = bps;
  }

  /// Record a latency change for (from, to); later values overwrite.
  void note_latency(net::NodeId from, net::NodeId to, double seconds) {
    PairDelta& d = pairs_[{from, to}];
    d.latency_changed = true;
    d.latency_s = seconds;
  }

  /// Record that the (from, to) entry was dropped. Supersedes earlier value
  /// changes for the pair (they described an entry that no longer exists).
  void note_invalidated(net::NodeId from, net::NodeId to) {
    PairDelta& d = pairs_[{from, to}];
    d = PairDelta{};
    d.invalidated = true;
  }

  /// Record that every entry touching `host` was dropped (daemon death).
  void note_host_invalidated(net::NodeId host) { invalidated_hosts_.insert(host); }

  bool empty() const { return pairs_.empty() && invalidated_hosts_.empty(); }

  /// Number of distinct directed pairs this delta touches (the
  /// `vadapt.warm.delta_pairs` histogram sample).
  std::size_t pair_count() const { return pairs_.size(); }

  const std::map<PairKey, PairDelta>& pairs() const { return pairs_; }
  const std::set<net::NodeId>& invalidated_hosts() const { return invalidated_hosts_; }

  void clear() {
    pairs_.clear();
    invalidated_hosts_.clear();
  }

  /// Fold `other` (the later diff) on top of this one.
  void merge(const ViewDelta& other) {
    for (const auto& [key, d] : other.pairs_) {
      if (d.invalidated) note_invalidated(key.first, key.second);
      if (d.bandwidth_changed) note_bandwidth(key.first, key.second, d.bandwidth_bps);
      if (d.latency_changed) note_latency(key.first, key.second, d.latency_s);
    }
    for (net::NodeId host : other.invalidated_hosts_) invalidated_hosts_.insert(host);
  }

 private:
  std::map<PairKey, PairDelta> pairs_;
  std::set<net::NodeId> invalidated_hosts_;
};

}  // namespace vw::wren
