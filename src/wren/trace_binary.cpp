#include "wren/trace_binary.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace vw::wren {

namespace {

// Explicit little-endian byte packing: portable across host endianness and
// free of aliasing traps (the compiler folds these into single moves on LE
// targets).
void put_u16(unsigned char* p, std::uint16_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}
void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

[[noreturn]] void corrupt(const std::string& what) {
  throw std::runtime_error("vw.trace.v1 parse error: " + what);
}

}  // namespace

std::array<unsigned char, kTraceRecordSize> encode_record(const PacketRecord& r) {
  std::array<unsigned char, kTraceRecordSize> buf{};
  unsigned char* p = buf.data();
  put_u64(p + 0, static_cast<std::uint64_t>(r.timestamp));
  put_u64(p + 8, r.seq);
  put_u64(p + 16, r.ack);
  put_u32(p + 24, r.flow.src);
  put_u32(p + 28, r.flow.dst);
  put_u32(p + 32, r.payload_bytes);
  put_u32(p + 36, r.wire_bytes);
  put_u16(p + 40, r.flow.src_port);
  put_u16(p + 42, r.flow.dst_port);
  p[44] = r.direction == net::TapDirection::kOutgoing ? 0 : 1;
  p[45] = static_cast<unsigned char>((r.is_ack ? 1 : 0) | (r.syn ? 2 : 0));
  // p[46..47] reserved, already zero.
  return buf;
}

PacketRecord decode_record(const unsigned char* p) {
  PacketRecord r;
  r.timestamp = static_cast<SimTime>(get_u64(p + 0));
  r.seq = get_u64(p + 8);
  r.ack = get_u64(p + 16);
  r.flow.src = get_u32(p + 24);
  r.flow.dst = get_u32(p + 28);
  r.payload_bytes = get_u32(p + 32);
  r.wire_bytes = get_u32(p + 36);
  r.flow.src_port = get_u16(p + 40);
  r.flow.dst_port = get_u16(p + 42);
  r.flow.proto = net::Protocol::kTcp;  // only TCP is ever captured
  r.direction = p[44] == 0 ? net::TapDirection::kOutgoing : net::TapDirection::kIncoming;
  r.is_ack = (p[45] & 1) != 0;
  r.syn = (p[45] & 2) != 0;
  return r;
}

std::array<unsigned char, kTraceHeaderSize> encode_header(const TraceFileHeader& h) {
  std::array<unsigned char, kTraceHeaderSize> buf{};
  unsigned char* p = buf.data();
  put_u64(p + 0, kTraceMagic);
  put_u32(p + 8, kTraceVersion);
  put_u32(p + 12, static_cast<std::uint32_t>(kTraceRecordSize));
  put_u32(p + 16, h.host);
  put_u32(p + 20, h.shard);
  put_u64(p + 24, h.record_count);
  put_u64(p + 32, h.dropped);
  // p[40..63] reserved, already zero.
  return buf;
}

TraceFileHeader decode_header(const unsigned char* p) {
  if (get_u64(p + 0) != kTraceMagic) corrupt("bad magic (not a vw.trace.v1 file)");
  const std::uint32_t version = get_u32(p + 8);
  if (version != kTraceVersion) {
    corrupt("unsupported version " + std::to_string(version) + " (this reader handles " +
            std::to_string(kTraceVersion) + ")");
  }
  const std::uint32_t record_size = get_u32(p + 12);
  if (record_size != kTraceRecordSize) {
    corrupt("record size " + std::to_string(record_size) + ", expected " +
            std::to_string(kTraceRecordSize));
  }
  TraceFileHeader h;
  h.host = get_u32(p + 16);
  h.shard = get_u32(p + 20);
  h.record_count = get_u64(p + 24);
  h.dropped = get_u64(p + 32);
  return h;
}

void write_trace_binary(std::ostream& out, const TraceFileHeader& header,
                        const std::vector<PacketRecord>& records) {
  TraceFileHeader h = header;
  h.record_count = records.size();
  const auto hdr = encode_header(h);
  out.write(reinterpret_cast<const char*>(hdr.data()), static_cast<std::streamsize>(hdr.size()));
  for (const PacketRecord& r : records) {
    const auto buf = encode_record(r);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
  }
  if (!out) throw std::runtime_error("vw.trace.v1 write error (stream failed)");
}

BinaryTrace read_trace_binary(std::istream& in) {
  std::array<unsigned char, kTraceHeaderSize> hdr;
  in.read(reinterpret_cast<char*>(hdr.data()), static_cast<std::streamsize>(hdr.size()));
  if (static_cast<std::size_t>(in.gcount()) != kTraceHeaderSize) {
    corrupt("truncated header (" + std::to_string(in.gcount()) + " of " +
            std::to_string(kTraceHeaderSize) + " bytes)");
  }

  BinaryTrace trace;
  trace.header = decode_header(hdr.data());
  trace.records.reserve(static_cast<std::size_t>(trace.header.record_count));

  std::array<unsigned char, kTraceRecordSize> buf;
  std::uint64_t n = 0;
  for (;;) {
    in.read(reinterpret_cast<char*>(buf.data()), static_cast<std::streamsize>(buf.size()));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    if (got != kTraceRecordSize) {
      corrupt("truncated record " + std::to_string(n) + " (" + std::to_string(got) + " of " +
              std::to_string(kTraceRecordSize) + " bytes)");
    }
    trace.records.push_back(decode_record(buf.data()));
    ++n;
  }
  if (n != trace.header.record_count) {
    corrupt("record count mismatch: header says " + std::to_string(trace.header.record_count) +
            ", file holds " + std::to_string(n));
  }
  return trace;
}

BinaryTrace read_trace_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace_binary(in);
}

}  // namespace vw::wren
