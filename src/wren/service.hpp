#pragma once

#include <optional>
#include <string>
#include <vector>

#include "soap/rpc.hpp"
#include "wren/analyzer.hpp"

// Wren's SOAP measurement interface.
//
// Each host's analyzer is exported as endpoint "wren://<host-name>" with
// methods:
//   GetAvailableBandwidth(peer) -> bits/s or empty when unknown
//   GetLatency(peer)            -> seconds or empty when unknown
//   GetPeers()                  -> peer list
//   GetObservations(since)      -> observation batch with monotone ids,
//                                  so clients can consume the measurement
//                                  stream without blocking the analyzer.

namespace vw::wren {

struct StreamedObservation {
  std::uint64_t id = 0;
  net::NodeId peer = net::kInvalidNode;
  SicObservation observation;
};

class WrenService {
 public:
  WrenService(soap::RpcRegistry& registry, OnlineAnalyzer& analyzer, std::string endpoint);
  ~WrenService();

  WrenService(const WrenService&) = delete;
  WrenService& operator=(const WrenService&) = delete;

  const std::string& endpoint() const { return endpoint_; }

 private:
  soap::XmlNode handle_get_bandwidth(const soap::XmlNode& request) const;
  soap::XmlNode handle_get_latency(const soap::XmlNode& request) const;
  soap::XmlNode handle_get_capacity(const soap::XmlNode& request) const;
  soap::XmlNode handle_get_peers(const soap::XmlNode& request) const;
  soap::XmlNode handle_get_observations(const soap::XmlNode& request) const;

  soap::RpcRegistry& registry_;
  OnlineAnalyzer& analyzer_;
  std::string endpoint_;
  std::vector<StreamedObservation> stream_;
  std::uint64_t next_stream_id_ = 1;
  static constexpr std::size_t kStreamCapacity = 4096;
};

/// Client-side wrapper over the SOAP calls (what VTTIF's nonblocking
/// collection uses).
class WrenClient {
 public:
  WrenClient(const soap::RpcRegistry& registry, std::string endpoint);

  std::optional<double> available_bandwidth_bps(net::NodeId peer) const;
  std::optional<double> latency_seconds(net::NodeId peer) const;
  std::optional<double> capacity_bps(net::NodeId peer) const;
  std::vector<net::NodeId> peers() const;
  /// Observations with id > since; returns them and the max id seen.
  std::pair<std::vector<StreamedObservation>, std::uint64_t> observations(
      std::uint64_t since) const;

 private:
  const soap::RpcRegistry& registry_;
  std::string endpoint_;
};

}  // namespace vw::wren
