#include "wren/trace_writer.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace vw::wren {

TraceWriter::TraceWriter(net::Network& network, net::NodeId host, std::string path,
                         TraceWriterParams params)
    : network_(network),
      host_(host),
      path_(std::move(path)),
      params_(params),
      ring_(params.ring_capacity) {
  VW_REQUIRE(params_.batch > 0, "TraceWriter: batch must be positive");
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) throw std::runtime_error("TraceWriter: cannot open " + path_);
  // Placeholder header; finish() patches record_count/dropped in place.
  TraceFileHeader header;
  header.host = host_;
  header.shard = params_.shard;
  const auto hdr = encode_header(header);
  out_.write(reinterpret_cast<const char*>(hdr.data()), static_cast<std::streamsize>(hdr.size()));
  writer_ = std::thread([this] { writer_loop(); });
  tap_id_ = network_.add_host_tap(host_, [this](const net::TapEvent& ev) { on_tap(ev); });
  tap_installed_ = true;
}

TraceWriter::~TraceWriter() { finish(); }

void TraceWriter::set_obs(const obs::Scope& scope) {
  c_captured_.store(scope.counter("wren.trace.writer.captured"), std::memory_order_relaxed);
  c_dropped_.store(scope.counter("wren.trace.writer.dropped"), std::memory_order_relaxed);
  c_written_.store(scope.counter("wren.trace.writer.written"), std::memory_order_relaxed);
  c_bytes_.store(scope.counter("wren.trace.writer.bytes"), std::memory_order_relaxed);
  g_ring_.store(scope.gauge("wren.trace.writer.ring"), std::memory_order_relaxed);
}

void TraceWriter::on_tap(const net::TapEvent& ev) {
  const net::Packet& pkt = *ev.packet;
  if (pkt.flow.proto != net::Protocol::kTcp) return;  // Wren analyzes TCP only
  PacketRecord r{
      .timestamp = ev.timestamp,
      .direction = ev.direction,
      .flow = pkt.flow,
      .payload_bytes = pkt.payload_bytes,
      .wire_bytes = pkt.size_bytes(),
      .seq = pkt.seq,
      .ack = pkt.ack,
      .is_ack = pkt.is_ack,
      .syn = pkt.syn,
  };
  while (!ring_.try_push(std::move(r))) {
    if (params_.overflow == TraceWriterParams::Overflow::kDropOldest) {
      PacketRecord oldest;
      if (ring_.try_pop(oldest)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        obs::add(c_dropped_.load(std::memory_order_relaxed));
      }
      // Either we freed a slot ourselves or the writer raced us to it; the
      // next try_push gets it.
    } else {
      std::this_thread::yield();  // kBlock: lossless, wait for the writer
    }
  }
  captured_.fetch_add(1, std::memory_order_relaxed);
  obs::add(c_captured_.load(std::memory_order_relaxed));
}

std::size_t TraceWriter::drain_batch() {
  PacketRecord r;
  std::size_t n = 0;
  while (n < params_.batch && ring_.try_pop(r)) {
    append_record(r);
    ++n;
  }
  if (n > 0) {
    written_.fetch_add(n, std::memory_order_relaxed);
    obs::add(c_written_.load(std::memory_order_relaxed), n);
    obs::add(c_bytes_.load(std::memory_order_relaxed), n * kTraceRecordSize);
  }
  obs::set(g_ring_.load(std::memory_order_relaxed), static_cast<double>(ring_.size_approx()));
  return n;
}

void TraceWriter::append_record(const PacketRecord& r) {
  const auto buf = encode_record(r);
  out_.write(reinterpret_cast<const char*>(buf.data()), static_cast<std::streamsize>(buf.size()));
  bytes_.fetch_add(buf.size(), std::memory_order_relaxed);
}

void TraceWriter::writer_loop() {
  for (;;) {
    const std::size_t drained = drain_batch();
    if (drained == params_.batch) continue;  // ring still hot: keep pulling
    out_.flush();                            // idle edge: make the shard durable
    MutexLock lock(mu_);
    if (stop_) return;  // finish() drains the tail itself after the join
    // Bounded idle sleep instead of per-record notification: the producer
    // is the simulation hot path and must never make a futex syscall per
    // packet. 500 us of added drain latency is invisible to file capture.
    cv_.wait_for_us(mu_, 500);
  }
}

void TraceWriter::finish() {
  if (finished_) return;
  if (tap_installed_) {
    network_.remove_host_tap(host_, tap_id_);
    tap_installed_ = false;
  }
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  // Tail drain: the producer is detached and the writer thread has exited,
  // so this thread is the only one touching the ring now.
  while (drain_batch() > 0) {
  }
  patch_header();
  out_.flush();
  out_.close();
  finished_ = true;
}

void TraceWriter::patch_header() {
  TraceFileHeader header;
  header.host = host_;
  header.shard = params_.shard;
  header.record_count = written_.load(std::memory_order_relaxed);
  header.dropped = dropped_.load(std::memory_order_relaxed);
  const auto hdr = encode_header(header);
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(hdr.data()), static_cast<std::streamsize>(hdr.size()));
}

}  // namespace vw::wren
