#include "wren/trace.hpp"

#include "util/check.hpp"

namespace vw::wren {

TraceFacility::TraceFacility(net::Network& network, net::NodeId host, std::size_t capacity)
    : network_(network), host_(host), capacity_(capacity) {
  VW_REQUIRE(capacity_ > 0, "TraceFacility: capacity must be positive");
  ring_.resize(capacity_);  // the single allocation this facility ever makes
  tap_id_ = network_.add_host_tap(host, [this](const net::TapEvent& ev) { on_tap(ev); });
}

TraceFacility::~TraceFacility() { network_.remove_host_tap(host_, tap_id_); }

void TraceFacility::set_obs(const obs::Scope& scope) {
  c_captured_ = scope.counter("wren.trace.captured");
  c_dropped_ = scope.counter("wren.trace.dropped");
  g_buffered_ = scope.gauge("wren.trace.buffered");
  obs::set(g_buffered_, static_cast<double>(size_));
}

void TraceFacility::on_tap(const net::TapEvent& ev) {
  const net::Packet& pkt = *ev.packet;
  if (pkt.flow.proto != net::Protocol::kTcp) return;
  std::size_t write;
  if (size_ == capacity_) {
    // Full: overwrite the oldest record in place (drop-oldest semantics).
    write = head_;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    ++dropped_;
    obs::add(c_dropped_);
  } else {
    write = head_ + size_;
    if (write >= capacity_) write -= capacity_;
    ++size_;
  }
  ring_[write] = PacketRecord{
      .timestamp = ev.timestamp,
      .direction = ev.direction,
      .flow = pkt.flow,
      .payload_bytes = pkt.payload_bytes,
      .wire_bytes = pkt.size_bytes(),
      .seq = pkt.seq,
      .ack = pkt.ack,
      .is_ack = pkt.is_ack,
      .syn = pkt.syn,
  };
  ++captured_;
  obs::add(c_captured_);
  obs::set(g_buffered_, static_cast<double>(size_));
}

std::vector<PacketRecord> TraceFacility::collect() {
  std::vector<PacketRecord> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    std::size_t idx = head_ + i;
    if (idx >= capacity_) idx -= capacity_;
    out.push_back(ring_[idx]);
  }
  head_ = 0;
  size_ = 0;
  obs::set(g_buffered_, 0.0);
  return out;
}

}  // namespace vw::wren
