#include "wren/trace.hpp"

namespace vw::wren {

TraceFacility::TraceFacility(net::Network& network, net::NodeId host, std::size_t capacity)
    : network_(network), host_(host), capacity_(capacity) {
  tap_id_ = network_.add_host_tap(host, [this](const net::TapEvent& ev) { on_tap(ev); });
}

TraceFacility::~TraceFacility() { network_.remove_host_tap(host_, tap_id_); }

void TraceFacility::set_obs(const obs::Scope& scope) {
  c_captured_ = scope.counter("wren.trace.captured");
  c_dropped_ = scope.counter("wren.trace.dropped");
}

void TraceFacility::on_tap(const net::TapEvent& ev) {
  const net::Packet& pkt = *ev.packet;
  if (pkt.flow.proto != net::Protocol::kTcp) return;
  if (buffer_.size() >= capacity_) {
    ++dropped_;
    obs::add(c_dropped_);
    buffer_.pop_front();
  }
  buffer_.push_back(PacketRecord{
      .timestamp = ev.timestamp,
      .direction = ev.direction,
      .flow = pkt.flow,
      .payload_bytes = pkt.payload_bytes,
      .wire_bytes = pkt.size_bytes(),
      .seq = pkt.seq,
      .ack = pkt.ack,
      .is_ack = pkt.is_ack,
      .syn = pkt.syn,
  });
  ++captured_;
  obs::add(c_captured_);
}

std::vector<PacketRecord> TraceFacility::collect() {
  std::vector<PacketRecord> out(buffer_.begin(), buffer_.end());
  buffer_.clear();
  return out;
}

}  // namespace vw::wren
