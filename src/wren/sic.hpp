#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "util/stats.hpp"
#include "util/time.hpp"
#include "util/trend.hpp"
#include "wren/train.hpp"

// Self-induced-congestion analysis of passively observed trains.
//
// For each extracted train we match the returning cumulative ACKs, compute
// per-packet RTTs, and test for an increasing RTT trend. A train whose ISR
// exceeds the available bandwidth necessarily builds queue at the bottleneck
// and shows the trend; a train below it does not. Each train yields one
// observation; because a single short train is "a singleton observation of
// an inherently bursty process", the estimator fuses a sliding window of
// observations into the running available-bandwidth estimate.

namespace vw::wren {

struct SicObservation {
  SimTime time = 0;          ///< when the observation was completed
  double isr_bps = 0;        ///< the train's initial sending rate
  double ack_rate_bps = 0;   ///< rate at which the ACKs returned
  bool congested = false;    ///< increasing RTT trend detected
  std::size_t train_length = 0;
};

struct SicParams {
  TrendParams trend;                       ///< RTT trend decision thresholds
  std::size_t window_observations = 20;    ///< fusion window size
  SimTime window_age = seconds(3.0);       ///< fusion window max age
  SimTime pending_timeout = seconds(3.0);  ///< drop trains whose ACKs never arrive
  double smoothing_alpha = 0.3;            ///< EWMA on the reported estimate
  /// A train whose mean RTT exceeds this multiple of the observed minimum
  /// RTT is treated as congested even without an increasing trend: at full
  /// saturation the drop-tail queue pins at its limit, RTTs are high but
  /// flat, and the pure trend test would misread the train as uncongested.
  double saturated_rtt_factor = 2.5;
};

class SicEstimator {
 public:
  using ObservationFn = std::function<void(const SicObservation&)>;

  explicit SicEstimator(SicParams params = {});

  /// Feed a cumulative ACK arrival (from the reverse-direction trace).
  void add_ack(SimTime time, std::uint64_t ack);

  /// Queue a freshly extracted train for ACK matching.
  void add_train(const Train& train);

  /// Attempt to complete pending trains; call after feeding acks/trains.
  void process(SimTime now);

  void set_on_observation(ObservationFn fn) { on_observation_ = std::move(fn); }

  /// Smoothed available-bandwidth estimate (bits/s); nullopt before any
  /// observation completes. Includes the monitored flow's own consumption.
  std::optional<double> estimate_bps() const;

  /// Unsmoothed fusion of the current observation window.
  std::optional<double> raw_estimate_bps() const;

  const std::deque<SicObservation>& window() const { return window_; }
  std::uint64_t observations_total() const { return observations_total_; }
  std::uint64_t trains_dropped() const { return trains_dropped_; }

  /// Smallest per-packet RTT seen while matching trains (seconds) — the
  /// latency estimate's raw material.
  std::optional<double> min_rtt_seconds() const { return min_rtt_s_; }

  /// Bottleneck capacity estimate from ACK-pair dispersion: back-to-back
  /// packets leave the bottleneck spaced by its service time, and per-packet
  /// ACKs preserve that spacing, so the fastest ACK pair reveals the
  /// capacity (packet-pair principle). Nullopt before any train matches.
  std::optional<double> capacity_estimate_bps() const { return capacity_bps_; }

 private:
  struct AckRecord {
    SimTime time;
    std::uint64_t ack;
  };

  void evaluate(const Train& train);
  void prune_window(SimTime now);
  std::optional<AckRecord> first_ack_covering(std::uint64_t seq_end) const;

  SicParams params_;
  std::deque<AckRecord> acks_;  ///< cumulative-max ACKs, increasing in both fields
  std::deque<Train> pending_;
  std::deque<SicObservation> window_;
  Ewma smoothed_;
  ObservationFn on_observation_;
  std::uint64_t observations_total_ = 0;
  std::uint64_t trains_dropped_ = 0;
  std::optional<double> min_rtt_s_;
  std::optional<double> capacity_bps_;
};

}  // namespace vw::wren
