#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "wren/sic.hpp"
#include "wren/trace.hpp"
#include "wren/train.hpp"

// Wren's online user-level analysis: periodically drains the kernel trace,
// feeds per-flow train extraction and SIC evaluation, and maintains
// per-peer available-bandwidth and latency state that the SOAP service
// (and VTTIF's nonblocking collect calls) read.

namespace vw::wren {

struct WrenParams {
  SimTime collect_period = millis(100);  ///< user-level collection interval
  SimTime freshness = seconds(30.0);     ///< estimates older than this are stale
  TrainParams train;
  SicParams sic;
};

class OnlineAnalyzer {
 public:
  /// (peer host, observation) stream callback.
  using ObservationFn = std::function<void(net::NodeId, const SicObservation&)>;

  OnlineAnalyzer(net::Network& network, net::NodeId host, WrenParams params = {});

  OnlineAnalyzer(const OnlineAnalyzer&) = delete;
  OnlineAnalyzer& operator=(const OnlineAnalyzer&) = delete;

  /// Latest available-bandwidth estimate toward `peer` (bits/s); nullopt
  /// when no fresh measurement exists. Includes the monitored traffic's own
  /// consumption, as in the paper.
  std::optional<double> available_bandwidth_bps(net::NodeId peer) const;

  /// One-way latency estimate toward `peer` (seconds, min RTT / 2).
  std::optional<double> latency_seconds(net::NodeId peer) const;

  /// Bottleneck capacity estimate toward `peer` (bits/s, from ACK-pair
  /// dispersion) — distinct from available bandwidth.
  std::optional<double> capacity_bps(net::NodeId peer) const;

  /// Peers with any measurement state.
  std::vector<net::NodeId> peers() const;

  void set_on_observation(ObservationFn fn) { on_observation_ = std::move(fn); }

  /// Attach telemetry: wren.collect.*, wren.trains.*, wren.sic.* counters
  /// plus the wren.train.length histogram; forwards to the trace facility.
  void set_obs(const obs::Scope& scope);

  net::NodeId host() const { return host_; }
  const TraceFacility& trace() const { return trace_; }
  std::uint64_t observations_total() const { return observations_total_; }

  /// Run one analysis pass immediately (normally driven by the timer).
  void analyze_now();

 private:
  struct FlowState {
    std::unique_ptr<TrainExtractor> extractor;
    std::unique_ptr<SicEstimator> estimator;
    SimTime last_outgoing = 0;
  };
  struct PeerState {
    std::optional<double> bandwidth_bps;
    SimTime bandwidth_at = 0;
    std::optional<double> min_rtt_s;
    std::optional<double> capacity_bps;
  };

  FlowState& flow_state(const net::FlowKey& key);

  net::Network& network_;
  net::NodeId host_;
  WrenParams params_;
  TraceFacility trace_;
  std::map<net::FlowKey, FlowState> flows_;
  std::map<net::NodeId, PeerState> peer_state_;
  ObservationFn on_observation_;
  std::uint64_t observations_total_ = 0;
  obs::Counter* c_collect_runs_ = nullptr;
  obs::Counter* c_collect_records_ = nullptr;
  obs::Counter* c_trains_ = nullptr;
  obs::Histogram* h_train_length_ = nullptr;
  obs::Counter* c_observations_ = nullptr;
  obs::Counter* c_congested_ = nullptr;
  sim::PeriodicTask task_;
};

}  // namespace vw::wren
