#include "wren/view.hpp"

#include <cmath>

#include "util/check.hpp"

namespace vw::wren {

bool GlobalNetworkView::valid_measurement(double v) { return std::isfinite(v) && v >= 0; }

bool GlobalNetworkView::update_bandwidth(net::NodeId from, net::NodeId to, double bps,
                                         SimTime at) {
  VW_REQUIRE(at >= 0, "measurement timestamp must be non-negative");
  if (!valid_measurement(bps)) {
    ++rejected_reports_;
    obs::add(c_rejected_);
    return false;
  }
  PathMeasurement& m = entries_[{from, to}];
  if (track_delta_ && (!m.has_bandwidth || m.bandwidth_bps != bps)) {
    delta_.note_bandwidth(from, to, bps);
  }
  m.bandwidth_bps = bps;
  m.has_bandwidth = true;
  m.updated_at = at;
  return true;
}

bool GlobalNetworkView::update_latency(net::NodeId from, net::NodeId to, double seconds,
                                       SimTime at) {
  VW_REQUIRE(at >= 0, "measurement timestamp must be non-negative");
  if (!valid_measurement(seconds)) {
    ++rejected_reports_;
    obs::add(c_rejected_);
    return false;
  }
  PathMeasurement& m = entries_[{from, to}];
  if (track_delta_ && (!m.has_latency || m.latency_s != seconds)) {
    delta_.note_latency(from, to, seconds);
  }
  m.latency_s = seconds;
  m.has_latency = true;
  m.updated_at = at;
  return true;
}

void GlobalNetworkView::set_obs(const obs::Scope& scope) {
  c_rejected_ = scope.counter("wren.view.rejected_reports");
}

bool GlobalNetworkView::is_fresh(const PathMeasurement& m) const {
  if (staleness_horizon_ <= 0 || !clock_) return true;
  return clock_() - m.updated_at <= staleness_horizon_;
}

std::optional<double> GlobalNetworkView::bandwidth_bps(net::NodeId from, net::NodeId to) const {
  auto it = entries_.find({from, to});
  if (it == entries_.end() || !it->second.has_bandwidth) return std::nullopt;
  if (!is_fresh(it->second)) return std::nullopt;
  return it->second.bandwidth_bps;
}

std::optional<double> GlobalNetworkView::latency_seconds(net::NodeId from, net::NodeId to) const {
  auto it = entries_.find({from, to});
  if (it == entries_.end() || !it->second.has_latency) return std::nullopt;
  if (!is_fresh(it->second)) return std::nullopt;
  return it->second.latency_s;
}

std::vector<std::pair<net::NodeId, net::NodeId>> GlobalNetworkView::measured_pairs() const {
  std::vector<std::pair<net::NodeId, net::NodeId>> out;
  out.reserve(entries_.size());
  for (const auto& [pair, m] : entries_) {
    if (is_fresh(m)) out.push_back(pair);
  }
  return out;
}

std::vector<std::tuple<net::NodeId, net::NodeId, double>> GlobalNetworkView::bandwidth_adjacency()
    const {
  std::vector<std::tuple<net::NodeId, net::NodeId, double>> out;
  for (const auto& [pair, m] : entries_) {
    if (m.has_bandwidth && is_fresh(m)) out.push_back({pair.first, pair.second, m.bandwidth_bps});
  }
  return out;
}

void GlobalNetworkView::invalidate(net::NodeId from, net::NodeId to) {
  auto it = entries_.find({from, to});
  if (it == entries_.end()) return;
  if (track_delta_) delta_.note_invalidated(from, to);
  entries_.erase(it);
}

std::size_t GlobalNetworkView::invalidate_host(net::NodeId host) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.first == host || it->first.second == host) {
      if (track_delta_) delta_.note_invalidated(it->first.first, it->first.second);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (track_delta_ && removed > 0) delta_.note_host_invalidated(host);
  return removed;
}

std::size_t GlobalNetworkView::expire_stale() {
  if (staleness_horizon_ <= 0 || !clock_) return 0;
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (!is_fresh(it->second)) {
      if (track_delta_) delta_.note_invalidated(it->first.first, it->first.second);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace vw::wren
