#include "wren/active.hpp"

#include <algorithm>

namespace vw::wren {

ActiveProber::ActiveProber(transport::TransportStack& stack, net::NodeId src, net::NodeId dst,
                           std::uint16_t dst_port, ActiveProbeParams params)
    : stack_(stack),
      sim_(stack.simulator()),
      dst_(dst),
      dst_port_(dst_port),
      params_(params),
      lo_(params.min_rate_bps),
      hi_(params.max_rate_bps) {
  tx_ = stack_.udp_bind(src, stack_.ephemeral_port(src));
  rx_ = stack_.udp_bind(dst, dst_port);
  rx_->set_on_receive([this](const net::Packet& pkt) {
    // Datagram ids index into the current train's send timestamps.
    const std::uint64_t idx = pkt.seq - train_seq_base_;
    if (idx < send_times_.size()) {
      owd_s_.push_back(to_seconds(sim_.now() - send_times_[static_cast<std::size_t>(idx)]));
    }
  });
}

void ActiveProber::start(DoneFn on_done) {
  on_done_ = std::move(on_done);
  iteration_ = 0;
  finished_ = false;
  send_train();
}

void ActiveProber::send_train() {
  if (train_in_iteration_ == 0) {
    current_rate_ = 0.5 * (lo_ + hi_);
    congested_votes_ = 0;
  }
  send_times_.assign(params_.train_length, 0);
  owd_s_.clear();
  train_seq_base_ = tx_->datagrams_sent();
  ++trains_sent_;

  const double gap_s =
      static_cast<double>(params_.packet_bytes) * 8.0 / current_rate_;
  for (std::uint32_t i = 0; i < params_.train_length; ++i) {
    sim_.schedule_in(seconds(gap_s * i), [this, i] {
      send_times_[i] = sim_.now();
      tx_->send_to(dst_, dst_port_, params_.packet_bytes);
      bytes_injected_ += params_.packet_bytes + 28;  // + IP/UDP headers
    });
  }
  const SimTime train_duration = seconds(gap_s * params_.train_length);
  sim_.schedule_in(train_duration + params_.settle_after_train, [this] { evaluate_train(); });
}

void ActiveProber::evaluate_train() {
  // Heavy probe loss also signals congestion (queue overflow at this rate).
  const bool lossy = owd_s_.size() < params_.train_length * 3 / 4;
  if (lossy || slope_ratio(owd_s_) > params_.slope_ratio_threshold) {
    ++congested_votes_;
  }

  if (++train_in_iteration_ < params_.trains_per_rate) {
    sim_.schedule_in(params_.inter_train_gap, [this] { send_train(); });
    return;
  }

  // Majority verdict over this rate's trains drives the binary search.
  const bool congested = 2 * congested_votes_ > params_.trains_per_rate;
  train_in_iteration_ = 0;
  if (congested) {
    hi_ = current_rate_;
  } else {
    lo_ = current_rate_;
  }

  if (++iteration_ >= params_.iterations) {
    finished_ = true;
    if (on_done_) on_done_(estimate_bps());
    return;
  }
  sim_.schedule_in(params_.inter_train_gap, [this] { send_train(); });
}

}  // namespace vw::wren
