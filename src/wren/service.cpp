#include "wren/service.hpp"

#include <charconv>
#include <stdexcept>

namespace vw::wren {

namespace {

net::NodeId parse_node(const std::string& s) {
  net::NodeId value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("bad peer id: " + s);
  }
  return value;
}

std::string fmt(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, ptr);
}

double parse_double(const std::string& s) {
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  if (pos != s.size()) throw std::invalid_argument("bad number: " + s);
  return v;
}

}  // namespace

WrenService::WrenService(soap::RpcRegistry& registry, OnlineAnalyzer& analyzer,
                         std::string endpoint)
    : registry_(registry), analyzer_(analyzer), endpoint_(std::move(endpoint)) {
  analyzer_.set_on_observation([this](net::NodeId peer, const SicObservation& obs) {
    if (stream_.size() >= kStreamCapacity) {
      stream_.erase(stream_.begin(), stream_.begin() + kStreamCapacity / 4);
    }
    stream_.push_back(StreamedObservation{next_stream_id_++, peer, obs});
  });
  registry_.register_method(endpoint_, "GetAvailableBandwidth",
                            [this](const soap::XmlNode& r) { return handle_get_bandwidth(r); });
  registry_.register_method(endpoint_, "GetLatency",
                            [this](const soap::XmlNode& r) { return handle_get_latency(r); });
  registry_.register_method(endpoint_, "GetCapacity",
                            [this](const soap::XmlNode& r) { return handle_get_capacity(r); });
  registry_.register_method(endpoint_, "GetPeers",
                            [this](const soap::XmlNode& r) { return handle_get_peers(r); });
  registry_.register_method(endpoint_, "GetObservations",
                            [this](const soap::XmlNode& r) { return handle_get_observations(r); });
}

WrenService::~WrenService() { registry_.unregister_endpoint(endpoint_); }

soap::XmlNode WrenService::handle_get_bandwidth(const soap::XmlNode& request) const {
  const net::NodeId peer = parse_node(request.child_text("peer"));
  soap::XmlNode resp;
  resp.name = "GetAvailableBandwidthResponse";
  if (auto bw = analyzer_.available_bandwidth_bps(peer)) {
    resp.add_text_child("bps", fmt(*bw));
  }
  return resp;
}

soap::XmlNode WrenService::handle_get_latency(const soap::XmlNode& request) const {
  const net::NodeId peer = parse_node(request.child_text("peer"));
  soap::XmlNode resp;
  resp.name = "GetLatencyResponse";
  if (auto lat = analyzer_.latency_seconds(peer)) {
    resp.add_text_child("seconds", fmt(*lat));
  }
  return resp;
}

soap::XmlNode WrenService::handle_get_capacity(const soap::XmlNode& request) const {
  const net::NodeId peer = parse_node(request.child_text("peer"));
  soap::XmlNode resp;
  resp.name = "GetCapacityResponse";
  if (auto cap = analyzer_.capacity_bps(peer)) {
    resp.add_text_child("bps", fmt(*cap));
  }
  return resp;
}

soap::XmlNode WrenService::handle_get_peers(const soap::XmlNode&) const {
  soap::XmlNode resp;
  resp.name = "GetPeersResponse";
  for (net::NodeId peer : analyzer_.peers()) {
    resp.add_text_child("peer", std::to_string(peer));
  }
  return resp;
}

soap::XmlNode WrenService::handle_get_observations(const soap::XmlNode& request) const {
  const std::string since_text = request.child_text("since");
  const std::uint64_t since = since_text.empty() ? 0 : std::stoull(since_text);
  soap::XmlNode resp;
  resp.name = "GetObservationsResponse";
  for (const StreamedObservation& so : stream_) {
    if (so.id <= since) continue;
    soap::XmlNode& n = resp.add_child("observation");
    n.add_text_child("id", std::to_string(so.id));
    n.add_text_child("peer", std::to_string(so.peer));
    n.add_text_child("time", fmt(to_seconds(so.observation.time)));
    n.add_text_child("isr_bps", fmt(so.observation.isr_bps));
    n.add_text_child("ack_rate_bps", fmt(so.observation.ack_rate_bps));
    n.add_text_child("congested", so.observation.congested ? "1" : "0");
    n.add_text_child("train_length", std::to_string(so.observation.train_length));
  }
  return resp;
}

WrenClient::WrenClient(const soap::RpcRegistry& registry, std::string endpoint)
    : registry_(registry), endpoint_(std::move(endpoint)) {}

std::optional<double> WrenClient::available_bandwidth_bps(net::NodeId peer) const {
  soap::XmlNode req;
  req.name = "GetAvailableBandwidth";
  req.add_text_child("peer", std::to_string(peer));
  const soap::XmlNode resp = registry_.call(endpoint_, "GetAvailableBandwidth", req);
  if (resp.child("bps") == nullptr) return std::nullopt;
  return parse_double(resp.child_text("bps"));
}

std::optional<double> WrenClient::latency_seconds(net::NodeId peer) const {
  soap::XmlNode req;
  req.name = "GetLatency";
  req.add_text_child("peer", std::to_string(peer));
  const soap::XmlNode resp = registry_.call(endpoint_, "GetLatency", req);
  if (resp.child("seconds") == nullptr) return std::nullopt;
  return parse_double(resp.child_text("seconds"));
}

std::optional<double> WrenClient::capacity_bps(net::NodeId peer) const {
  soap::XmlNode req;
  req.name = "GetCapacity";
  req.add_text_child("peer", std::to_string(peer));
  const soap::XmlNode resp = registry_.call(endpoint_, "GetCapacity", req);
  if (resp.child("bps") == nullptr) return std::nullopt;
  return parse_double(resp.child_text("bps"));
}

std::vector<net::NodeId> WrenClient::peers() const {
  soap::XmlNode req;
  req.name = "GetPeers";
  const soap::XmlNode resp = registry_.call(endpoint_, "GetPeers", req);
  std::vector<net::NodeId> out;
  for (const soap::XmlNode* n : resp.children_named("peer")) {
    out.push_back(parse_node(n->text));
  }
  return out;
}

std::pair<std::vector<StreamedObservation>, std::uint64_t> WrenClient::observations(
    std::uint64_t since) const {
  soap::XmlNode req;
  req.name = "GetObservations";
  req.add_text_child("since", std::to_string(since));
  const soap::XmlNode resp = registry_.call(endpoint_, "GetObservations", req);
  std::vector<StreamedObservation> out;
  std::uint64_t max_id = since;
  for (const soap::XmlNode* n : resp.children_named("observation")) {
    StreamedObservation so;
    so.id = std::stoull(n->child_text("id"));
    so.peer = parse_node(n->child_text("peer"));
    so.observation.time = seconds(parse_double(n->child_text("time")));
    so.observation.isr_bps = parse_double(n->child_text("isr_bps"));
    so.observation.ack_rate_bps = parse_double(n->child_text("ack_rate_bps"));
    so.observation.congested = n->child_text("congested") == "1";
    so.observation.train_length = std::stoull(n->child_text("train_length"));
    max_id = std::max(max_id, so.id);
    out.push_back(std::move(so));
  }
  return {std::move(out), max_id};
}

}  // namespace vw::wren
