#include "wren/offline.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vw::wren {

namespace {
constexpr char kHeader[] = "# wren-trace v1";
}

void write_trace(std::ostream& out, const std::vector<PacketRecord>& records) {
  out << kHeader << '\n';
  for (const PacketRecord& r : records) {
    out << r.timestamp << ' ' << (r.direction == net::TapDirection::kOutgoing ? 'O' : 'I') << ' '
        << r.flow.src << ' ' << r.flow.dst << ' ' << r.flow.src_port << ' ' << r.flow.dst_port
        << ' ' << r.payload_bytes << ' ' << r.wire_bytes << ' ' << r.seq << ' ' << r.ack << ' '
        << (r.is_ack ? 1 : 0) << ' ' << (r.syn ? 1 : 0) << '\n';
  }
}

std::vector<PacketRecord> read_trace(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& what) -> void {
    throw std::runtime_error("wren trace parse error at line " + std::to_string(line_no) + ": " +
                             what);
  };

  if (!std::getline(in, line)) fail("empty stream");
  ++line_no;
  if (line != kHeader) fail("bad header: " + line);

  std::vector<PacketRecord> records;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    PacketRecord r;
    char dir = 0;
    int is_ack = 0;
    int syn = 0;
    std::uint32_t src = 0, dst = 0;
    if (!(ls >> r.timestamp >> dir >> src >> dst >> r.flow.src_port >> r.flow.dst_port >>
          r.payload_bytes >> r.wire_bytes >> r.seq >> r.ack >> is_ack >> syn)) {
      fail("malformed record");
    }
    if (dir != 'O' && dir != 'I') fail("bad direction flag");
    r.direction = dir == 'O' ? net::TapDirection::kOutgoing : net::TapDirection::kIncoming;
    r.flow.src = src;
    r.flow.dst = dst;
    r.flow.proto = net::Protocol::kTcp;
    r.is_ack = is_ack != 0;
    r.syn = syn != 0;
    records.push_back(r);
  }
  return records;
}

std::vector<PacketRecord> filter_useful(const std::vector<PacketRecord>& records) {
  std::vector<PacketRecord> out;
  out.reserve(records.size());
  for (const PacketRecord& r : records) {
    const bool outgoing_data =
        r.direction == net::TapDirection::kOutgoing && !r.is_ack && r.payload_bytes > 0;
    const bool incoming_ack =
        r.direction == net::TapDirection::kIncoming && r.is_ack && r.payload_bytes == 0;
    if (outgoing_data || incoming_ack) out.push_back(r);
  }
  return out;
}

OfflineResult analyze_offline(const std::vector<PacketRecord>& records,
                              const TrainParams& train_params, const SicParams& sic_params) {
  struct FlowState {
    std::unique_ptr<TrainExtractor> extractor;
    std::unique_ptr<SicEstimator> estimator;
  };
  std::map<net::FlowKey, FlowState> flows;
  OfflineResult result;

  auto flow_state = [&](const net::FlowKey& key) -> FlowState& {
    auto it = flows.find(key);
    if (it != flows.end()) return it->second;
    FlowState state;
    state.estimator = std::make_unique<SicEstimator>(sic_params);
    SicEstimator* est = state.estimator.get();
    est->set_on_observation([&result, key](const SicObservation& obs) {
      result.observations.push_back({key, obs});
    });
    state.extractor = std::make_unique<TrainExtractor>(
        key, train_params, [est](const Train& t) { est->add_train(t); });
    return flows.emplace(key, std::move(state)).first->second;
  };

  SimTime last_time = 0;
  for (const PacketRecord& r : records) {
    last_time = std::max(last_time, r.timestamp);
    if (r.direction == net::TapDirection::kOutgoing && !r.is_ack && r.payload_bytes > 0) {
      flow_state(r.flow).extractor->add(r);
      ++result.records_consumed;
    } else if (r.direction == net::TapDirection::kIncoming && r.is_ack &&
               r.payload_bytes == 0) {
      auto it = flows.find(r.flow.reversed());
      if (it != flows.end()) {
        it->second.estimator->add_ack(r.timestamp, r.ack);
        ++result.records_consumed;
      }
    }
    // Periodic processing keeps pending-train matching bounded, as the
    // online analyzer's timer would.
    if (result.records_consumed % 256 == 0) {
      for (auto& [key, fs] : flows) fs.estimator->process(r.timestamp);
    }
  }

  // Final pass: flush pending runs and settle estimates.
  for (auto& [key, fs] : flows) {
    fs.extractor->flush();
    fs.estimator->process(last_time + seconds(10.0));
    if (auto est = fs.estimator->estimate_bps()) {
      result.estimates_bps.push_back({key, *est});
    }
  }
  result.flows_analyzed = flows.size();

  std::stable_sort(result.observations.begin(), result.observations.end(),
                   [](const auto& a, const auto& b) { return a.second.time < b.second.time; });
  return result;
}

}  // namespace vw::wren
