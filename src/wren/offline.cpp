#include "wren/offline.hpp"

#include <algorithm>
#include <deque>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vw::wren {

namespace {
constexpr char kHeader[] = "# wren-trace v1";
}

void write_trace(std::ostream& out, const std::vector<PacketRecord>& records) {
  out << kHeader << '\n';
  for (const PacketRecord& r : records) {
    out << r.timestamp << ' ' << (r.direction == net::TapDirection::kOutgoing ? 'O' : 'I') << ' '
        << r.flow.src << ' ' << r.flow.dst << ' ' << r.flow.src_port << ' ' << r.flow.dst_port
        << ' ' << r.payload_bytes << ' ' << r.wire_bytes << ' ' << r.seq << ' ' << r.ack << ' '
        << (r.is_ack ? 1 : 0) << ' ' << (r.syn ? 1 : 0) << '\n';
  }
}

std::vector<PacketRecord> read_trace(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& what) -> void {
    throw std::runtime_error("wren trace parse error at line " + std::to_string(line_no) + ": " +
                             what);
  };

  if (!std::getline(in, line)) fail("empty stream");
  ++line_no;
  if (line != kHeader) fail("bad header: " + line);

  std::vector<PacketRecord> records;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    PacketRecord r;
    char dir = 0;
    int is_ack = 0;
    int syn = 0;
    std::uint32_t src = 0, dst = 0;
    if (!(ls >> r.timestamp >> dir >> src >> dst >> r.flow.src_port >> r.flow.dst_port >>
          r.payload_bytes >> r.wire_bytes >> r.seq >> r.ack >> is_ack >> syn)) {
      fail("malformed record");
    }
    if (dir != 'O' && dir != 'I') fail("bad direction flag");
    // A record is exactly 12 fields; anything after them (including on the
    // final line of the file) is a malformed record, not ignorable noise.
    std::string rest;
    if (ls >> rest) fail("trailing garbage after record: " + rest);
    r.direction = dir == 'O' ? net::TapDirection::kOutgoing : net::TapDirection::kIncoming;
    r.flow.src = src;
    r.flow.dst = dst;
    r.flow.proto = net::Protocol::kTcp;
    r.is_ack = is_ack != 0;
    r.syn = syn != 0;
    records.push_back(r);
  }
  return records;
}

std::vector<PacketRecord> filter_useful(const std::vector<PacketRecord>& records) {
  std::vector<PacketRecord> out;
  out.reserve(records.size());
  for (const PacketRecord& r : records) {
    const bool outgoing_data =
        r.direction == net::TapDirection::kOutgoing && !r.is_ack && r.payload_bytes > 0;
    const bool incoming_ack =
        r.direction == net::TapDirection::kIncoming && r.is_ack && r.payload_bytes == 0;
    if (outgoing_data || incoming_ack) out.push_back(r);
  }
  return out;
}

std::vector<PacketRecord> merge_traces(const std::vector<std::vector<PacketRecord>>& shards) {
  // Decorate with (shard, index) so equal timestamps order deterministically
  // by shard list position — the merge is a pure function of its inputs.
  struct Tagged {
    const PacketRecord* record;
    std::size_t shard;
    std::size_t index;
  };
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  std::vector<Tagged> tagged;
  tagged.reserve(total);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (std::size_t i = 0; i < shards[s].size(); ++i) {
      tagged.push_back(Tagged{&shards[s][i], s, i});
    }
  }
  std::sort(tagged.begin(), tagged.end(), [](const Tagged& a, const Tagged& b) {
    if (a.record->timestamp != b.record->timestamp) {
      return a.record->timestamp < b.record->timestamp;
    }
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.index < b.index;
  });
  std::vector<PacketRecord> out;
  out.reserve(total);
  for (const Tagged& t : tagged) out.push_back(*t.record);
  return out;
}

bool TraceFilter::matches(const PacketRecord& r) const {
  if (src && r.flow.src != *src) return false;
  if (dst && r.flow.dst != *dst) return false;
  if (src_port && r.flow.src_port != *src_port) return false;
  if (dst_port && r.flow.dst_port != *dst_port) return false;
  if (r.timestamp < from || r.timestamp > to) return false;
  if (useful_only) {
    const bool outgoing_data =
        r.direction == net::TapDirection::kOutgoing && !r.is_ack && r.payload_bytes > 0;
    const bool incoming_ack =
        r.direction == net::TapDirection::kIncoming && r.is_ack && r.payload_bytes == 0;
    if (!outgoing_data && !incoming_ack) return false;
  }
  return true;
}

std::vector<PacketRecord> apply_filter(const std::vector<PacketRecord>& records,
                                       const TraceFilter& filter) {
  std::vector<PacketRecord> out;
  out.reserve(records.size());
  for (const PacketRecord& r : records) {
    if (filter.matches(r)) out.push_back(r);
  }
  return out;
}

namespace {

/// Frame identity for two-point matching: same flow, same first payload
/// byte, same length — what survives unchanged across hops.
struct FrameKey {
  net::FlowKey flow;
  std::uint64_t seq;
  std::uint32_t payload_bytes;

  friend auto operator<=>(const FrameKey&, const FrameKey&) = default;
};

bool is_data_frame(const PacketRecord& r, net::TapDirection dir) {
  return r.direction == dir && !r.is_ack && r.payload_bytes > 0;
}

}  // namespace

MatchResult match_traces(const std::vector<PacketRecord>& from,
                         const std::vector<PacketRecord>& to) {
  // FIFO queues of departure timestamps per frame identity: duplicates
  // (retransmissions) pair first-sent with first-arrived.
  std::map<FrameKey, std::deque<SimTime>> pending;
  std::size_t from_frames = 0;
  for (const PacketRecord& r : from) {
    if (!is_data_frame(r, net::TapDirection::kOutgoing)) continue;
    pending[FrameKey{r.flow, r.seq, r.payload_bytes}].push_back(r.timestamp);
    ++from_frames;
  }

  MatchResult result;
  for (const PacketRecord& r : to) {
    if (!is_data_frame(r, net::TapDirection::kIncoming)) continue;
    auto it = pending.find(FrameKey{r.flow, r.seq, r.payload_bytes});
    if (it == pending.end() || it->second.empty()) {
      ++result.unmatched_to;
      continue;
    }
    MatchedFrame m;
    m.flow = r.flow;
    m.seq = r.seq;
    m.payload_bytes = r.payload_bytes;
    m.sent_at = it->second.front();
    m.arrived_at = r.timestamp;
    it->second.pop_front();
    result.matched.push_back(m);
  }
  result.unmatched_from = from_frames - result.matched.size();

  std::stable_sort(result.matched.begin(), result.matched.end(),
                   [](const MatchedFrame& a, const MatchedFrame& b) {
                     return a.sent_at < b.sent_at;
                   });
  return result;
}

SimTime MatchResult::latency_quantile(double q) const {
  if (matched.empty()) return 0;
  std::vector<SimTime> lat;
  lat.reserve(matched.size());
  for (const MatchedFrame& m : matched) lat.push_back(m.latency());
  std::sort(lat.begin(), lat.end());
  const double pos = q * static_cast<double>(lat.size() - 1);
  std::size_t idx = static_cast<std::size_t>(pos);
  if (idx >= lat.size() - 1) return lat.back();
  return lat[idx];
}

SimTime MatchResult::min_latency() const { return latency_quantile(0.0); }
SimTime MatchResult::max_latency() const { return latency_quantile(1.0); }

double MatchResult::mean_latency_ns() const {
  if (matched.empty()) return 0.0;
  double sum = 0;
  for (const MatchedFrame& m : matched) sum += static_cast<double>(m.latency());
  return sum / static_cast<double>(matched.size());
}

OfflineResult analyze_offline(const std::vector<PacketRecord>& records,
                              const TrainParams& train_params, const SicParams& sic_params) {
  struct FlowState {
    std::unique_ptr<TrainExtractor> extractor;
    std::unique_ptr<SicEstimator> estimator;
  };
  std::map<net::FlowKey, FlowState> flows;
  OfflineResult result;

  auto flow_state = [&](const net::FlowKey& key) -> FlowState& {
    auto it = flows.find(key);
    if (it != flows.end()) return it->second;
    FlowState state;
    state.estimator = std::make_unique<SicEstimator>(sic_params);
    SicEstimator* est = state.estimator.get();
    est->set_on_observation([&result, key](const SicObservation& obs) {
      result.observations.push_back({key, obs});
    });
    state.extractor = std::make_unique<TrainExtractor>(
        key, train_params, [est](const Train& t) { est->add_train(t); });
    return flows.emplace(key, std::move(state)).first->second;
  };

  SimTime last_time = 0;
  for (const PacketRecord& r : records) {
    last_time = std::max(last_time, r.timestamp);
    if (r.direction == net::TapDirection::kOutgoing && !r.is_ack && r.payload_bytes > 0) {
      flow_state(r.flow).extractor->add(r);
      ++result.records_consumed;
    } else if (r.direction == net::TapDirection::kIncoming && r.is_ack &&
               r.payload_bytes == 0) {
      auto it = flows.find(r.flow.reversed());
      if (it != flows.end()) {
        it->second.estimator->add_ack(r.timestamp, r.ack);
        ++result.records_consumed;
      }
    }
    // Periodic processing keeps pending-train matching bounded, as the
    // online analyzer's timer would.
    if (result.records_consumed % 256 == 0) {
      for (auto& [key, fs] : flows) fs.estimator->process(r.timestamp);
    }
  }

  // Final pass: flush pending runs and settle estimates.
  for (auto& [key, fs] : flows) {
    fs.extractor->flush();
    fs.estimator->process(last_time + seconds(10.0));
    if (auto est = fs.estimator->estimate_bps()) {
      result.estimates_bps.push_back({key, *est});
    }
  }
  result.flows_analyzed = flows.size();

  std::stable_sort(result.observations.begin(), result.observations.end(),
                   [](const auto& a, const auto& b) { return a.second.time < b.second.time; });
  return result;
}

}  // namespace vw::wren
