#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/network.hpp"

// Path-level bandwidth reservations (paper opportunity 4: "reserve
// resources, when possible, to improve performance", realized in the
// paper's companion work via automatic optical network reservations).
// A reservation pins a guaranteed rate for one flow on every channel of its
// routed path, all-or-nothing, and can be released later.

namespace vw::net {

using ReservationId = std::uint64_t;

class ReservationManager {
 public:
  explicit ReservationManager(Network& network) : network_(network) {}

  ReservationManager(const ReservationManager&) = delete;
  ReservationManager& operator=(const ReservationManager&) = delete;

  ~ReservationManager();

  /// Reserve `rate_bps` for `flow` on every channel along the currently
  /// routed path flow.src -> flow.dst. Rolls back and returns nullopt when
  /// any hop lacks capacity (admission control) or the path is unroutable.
  std::optional<ReservationId> reserve_path(const FlowKey& flow, double rate_bps,
                                            std::int64_t burst_bytes = 32'768);

  /// Release a reservation on every channel it touched. Unknown ids are
  /// ignored (idempotent).
  void release(ReservationId id);

  std::size_t active() const { return reservations_.size(); }

  /// Total rate reserved on the directed channel from->to by this manager.
  double reserved_on(NodeId from, NodeId to) const;

 private:
  struct Record {
    FlowKey flow;
    double rate_bps;
    std::vector<std::pair<NodeId, NodeId>> hops;
  };

  Network& network_;
  std::map<ReservationId, Record> reservations_;
  ReservationId next_id_ = 1;
};

}  // namespace vw::net
