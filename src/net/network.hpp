#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

// The physical network: a graph of nodes (hosts and routers) connected by
// full-duplex links, with static shortest-latency routing, host protocol
// stacks, host-level packet taps (Wren's observation point) and NistNet-style
// endpoint delay emulation.
//
// Sharded execution (DESIGN.md §5g): partition() computes a deterministic
// delay-aware assignment of nodes to shards, and bind_shards() rebinds every
// channel to its owning shard's engine, routing cross-shard propagation
// through the ShardedSimulator's mailboxes. Channel ownership follows the
// datapath: a host's access channels belong to the host's shard (its
// transport stack enqueues there), while a router channel X->Y belongs to
// shard(Y) — the forwarding decision at a router is pure (static routes), so
// the upstream shard computes the next hop at serialization completion and
// posts the packet directly to the downstream owner. A pure-transit router
// therefore executes no per-packet events at all ("cut-through"), which is
// what makes hub-and-spoke topologies parallelize.

namespace vw::sim {
class ShardedSimulator;
}

namespace vw::net {

using TapId = std::uint64_t;
using HostStackFn = SmallFn<void(Packet&&)>;

struct NodeInfo {
  std::string name;
  bool is_host = false;
};

struct LinkConfig {
  double bits_per_sec = 100e6;
  SimTime prop_delay = micros(50);
  std::int64_t queue_limit_bytes = 256 * 1024;
};

class Network {
 public:
  explicit Network(sim::Simulator& sim);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology construction -------------------------------------------
  NodeId add_node(std::string name, bool is_host);
  NodeId add_host(std::string name) { return add_node(std::move(name), true); }
  NodeId add_router(std::string name) { return add_node(std::move(name), false); }

  /// Adds a full-duplex link (two symmetric channels) between a and b.
  void add_link(NodeId a, NodeId b, const LinkConfig& config);

  /// Recomputes the all-pairs next-hop table; must be called after topology
  /// construction and after any add_link.
  void compute_routes();

  // --- data path ---------------------------------------------------------
  /// Inject a packet at its source host. Stamps send_time and id.
  void send(Packet pkt);

  /// Install the protocol stack for a host (receives delivered packets).
  void set_host_stack(NodeId host, HostStackFn stack);

  /// Register a Wren-style tap on a host; sees outgoing packets at NIC
  /// serialization completion and incoming packets at delivery.
  TapId add_host_tap(NodeId host, TapFn fn);
  void remove_host_tap(NodeId host, TapId id);

  /// NistNet-style emulation: adds a fixed extra one-way delay to packets
  /// delivered from `a` to `b` (and b->a when bidirectional).
  void add_endpoint_delay(NodeId a, NodeId b, SimTime one_way, bool bidirectional = true);

  // --- failure injection (both directions of the link) --------------------
  void set_link_down(NodeId a, NodeId b, bool down);
  void set_link_loss(NodeId a, NodeId b, double p, const RngService& rngs);

  // --- sharded execution ---------------------------------------------------
  struct PartitionOptions {
    std::size_t shards = 1;
    /// Node groups that must land on one shard (hosts whose upper layers
    /// share state — a VirtuosoSystem's daemons, a TransportStack's hosts).
    std::vector<std::vector<NodeId>> pin_groups;
  };
  struct ShardPlan {
    std::size_t shards = 1;
    std::vector<std::uint32_t> node_shard;  ///< [node] -> shard
    /// Minimum propagation delay over channels whose delivery can cross
    /// shards — the conservative lookahead. 0 means nothing crosses.
    SimTime lookahead = 0;
  };

  /// Deterministic delay-aware partition (greedy edge-cut): pin groups are
  /// pre-merged, then link endpoints are clustered in ascending
  /// propagation-delay order under a balance cap, so low-delay LANs stay
  /// shard-internal and the cut — which bounds the lookahead — falls on the
  /// highest-delay links. Components are then LPT-packed onto shards. The
  /// result is a pure function of the topology and `options`.
  ShardPlan partition(const PartitionOptions& options) const;

  /// Bind every channel to its owning shard per `plan` and route cross-shard
  /// propagation through `ssim`'s mailboxes. Requires compute_routes() and a
  /// strictly positive propagation delay on every cut channel. Call once,
  /// before any traffic.
  void bind_shards(sim::ShardedSimulator& ssim, const ShardPlan& plan);

  bool sharded() const { return ssim_ != nullptr; }
  std::uint32_t node_shard(NodeId node) const;

  /// The engine that runs `node`'s events: its shard when sharded, the
  /// construction-time simulator otherwise.
  sim::Simulator& sim_for(NodeId node);

  // --- introspection -------------------------------------------------------
  std::size_t node_count() const { return nodes_.size(); }
  const NodeInfo& node(NodeId id) const { return nodes_.at(id); }
  sim::Simulator& simulator() { return sim_; }

  /// The directed channel from `from` to `to`; throws when absent.
  Channel& channel(NodeId from, NodeId to);
  const Channel& channel(NodeId from, NodeId to) const;
  bool has_channel(NodeId from, NodeId to) const;

  /// Next hop from `at` toward `dst`; kInvalidNode when unreachable.
  NodeId next_hop(NodeId at, NodeId dst) const;

  /// Sum of propagation delays along the routed path a->b; -1 if unreachable.
  SimTime path_prop_delay(NodeId a, NodeId b) const;

  /// Minimum channel capacity along the routed path a->b; 0 if unreachable.
  double path_bottleneck_bps(NodeId a, NodeId b) const;

  /// True when every channel on the routed path a->b is up (and the path
  /// exists). Routing is static, so a down link means the path is dead.
  bool path_up(NodeId a, NodeId b) const;

  std::uint64_t packets_delivered() const;
  std::uint64_t packets_dropped() const;

 private:
  void handle_arrival(Packet&& pkt, NodeId at);
  void deliver_to_host(Packet&& pkt);
  void forward(Packet&& pkt, NodeId at);
  void fire_taps(NodeId host, TapDirection dir, SimTime t, const Packet& pkt);
  void rebuild_channel_index();
  void route_handoff(Packet&& pkt, NodeId at, SimTime t, std::uint32_t from_shard);
  std::uint32_t shard_owner(const std::vector<std::uint32_t>& ns, NodeId from, NodeId to) const;
  bool channel_is_cut(const std::vector<std::uint32_t>& ns, NodeId from, NodeId to) const;

  /// Hot-path channel resolution: a single indexed load once the dense
  /// index has been built (compute_routes); falls back to the ordered map
  /// during cold construction-time queries. nullptr when absent.
  Channel* find_channel(NodeId from, NodeId to) const {
    if (channel_index_valid_) {
      if (from >= index_stride_ || to >= index_stride_) return nullptr;
      return channel_index_[static_cast<std::size_t>(from) * index_stride_ + to];
    }
    auto it = channel_by_pair_.find({from, to});
    return it == channel_by_pair_.end() ? nullptr : it->second;
  }

  sim::Simulator& sim_;
  std::vector<NodeInfo> nodes_;
  std::vector<std::unique_ptr<Channel>> channels_;
  // Cold-path owner of the (from, to) -> channel relation: construction,
  // duplicate-link checks, and the deterministic iteration order
  // compute_routes depends on. The hot path never hashes or searches it —
  // it goes through channel_index_, a dense n x n pointer matrix rebuilt
  // alongside the routing tables.
  std::map<std::pair<NodeId, NodeId>, Channel*> channel_by_pair_;
  std::vector<Channel*> channel_index_;  ///< [from * index_stride_ + to]
  std::size_t index_stride_ = 0;
  bool channel_index_valid_ = false;
  std::vector<HostStackFn> host_stacks_;
  std::vector<std::vector<std::pair<TapId, TapFn>>> taps_;
  std::map<std::pair<NodeId, NodeId>, SimTime> endpoint_delays_;
  std::vector<std::vector<NodeId>> next_hop_;  ///< [src][dst]
  bool routes_valid_ = false;
  TapId next_tap_id_ = 1;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t packets_delivered_ = 0;

  // Sharded mode. Hot per-shard counters get a cache line each: delivered
  // counts and packet-id sequences are bumped concurrently by different
  // workers, and sharing a line would serialize the very path the sharding
  // parallelizes. Packet ids become (shard + 1) << 48 | seq so the spaces
  // stay disjoint without coordination (ids feed tracing only).
  struct alignas(64) ShardLocal {
    std::uint64_t delivered = 0;
    std::uint64_t next_packet_seq = 0;
  };
  sim::ShardedSimulator* ssim_ = nullptr;
  std::vector<std::uint32_t> node_shard_;
  std::vector<ShardLocal> shard_local_;
};

}  // namespace vw::net
