#include "net/probe.hpp"

#include <algorithm>

namespace vw::net {

LinkProbe::LinkProbe(sim::Simulator& sim, const Channel& channel, SimTime period)
    : sim_(sim),
      channel_(channel),
      period_(period),
      task_(sim, period, [this] { sample(); }) {}

void LinkProbe::sample() {
  const std::uint64_t bytes = channel_.stats().bytes_serialized;
  const double interval_s = to_seconds(period_);
  const double utilized = static_cast<double>(bytes - last_bytes_) * 8.0 / interval_s;
  last_bytes_ = bytes;
  const double available = std::max(0.0, channel_.capacity_bps() - utilized);
  samples_.push_back(ProbeSample{sim_.now(), utilized, available});
}

double LinkProbe::current_available_bps() const {
  if (samples_.empty()) return channel_.capacity_bps();
  return samples_.back().available_bps;
}

}  // namespace vw::net
