#pragma once

#include <vector>

#include "net/link.hpp"
#include "sim/simulator.hpp"

// Ground-truth instrumentation, standing in for the paper's SNMP polling of
// the congested router: samples a channel's byte counters at a fixed period
// and reports the residual (available) bandwidth over each interval.

namespace vw::net {

struct ProbeSample {
  SimTime time;            ///< end of the sampling interval
  double utilized_bps;     ///< bits/s serialized during the interval
  double available_bps;    ///< capacity - utilized (floored at 0)
};

class LinkProbe {
 public:
  LinkProbe(sim::Simulator& sim, const Channel& channel, SimTime period);

  const std::vector<ProbeSample>& samples() const { return samples_; }
  const Channel& channel() const { return channel_; }

  /// Available bandwidth from the most recent sample; capacity before the
  /// first sample completes.
  double current_available_bps() const;

  void stop() { task_.stop(); }

 private:
  void sample();

  sim::Simulator& sim_;
  const Channel& channel_;
  SimTime period_;
  std::uint64_t last_bytes_ = 0;
  std::vector<ProbeSample> samples_;
  sim::PeriodicTask task_;
};

}  // namespace vw::net
