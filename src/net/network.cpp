#include "net/network.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "sim/sharded.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace vw::net {

namespace {
// Routing weight: propagation delay plus a small per-hop cost so equal-delay
// alternatives prefer fewer hops and ties break deterministically.
constexpr SimTime kPerHopCost = micros(1);
}  // namespace

Network::Network(sim::Simulator& sim) : sim_(sim) {}

NodeId Network::add_node(std::string name, bool is_host) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeInfo{std::move(name), is_host});
  host_stacks_.emplace_back();
  taps_.emplace_back();
  routes_valid_ = false;
  channel_index_valid_ = false;  // stride changes with the node count
  return id;
}

void Network::add_link(NodeId a, NodeId b, const LinkConfig& config) {
  VW_REQUIRE(a < nodes_.size() && b < nodes_.size(), "add_link: bad node (", a, ", ", b, ")");
  VW_REQUIRE(a != b, "add_link: self link on node ", a);
  VW_REQUIRE(!has_channel(a, b), "add_link: duplicate link ", a, " <-> ", b);
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    auto ch = std::make_unique<Channel>(sim_, static_cast<ChannelId>(channels_.size()), from, to,
                                        config.bits_per_sec, config.prop_delay,
                                        config.queue_limit_bytes);
    Channel* raw = ch.get();
    raw->set_on_serialized([this, from](Packet& pkt, SimTime t) {
      // Outgoing tap at the source host only: fires when the packet has
      // fully serialized onto the host's own access link (what a kernel
      // trace with NIC-level timestamps observes). Downstream hops must not
      // re-fire the tap or re-stamp the wire time.
      if (pkt.flow.src == from) {
        pkt.wire_time = t;
        fire_taps(pkt.flow.src, TapDirection::kOutgoing, t, pkt);
      }
    });
    raw->set_on_delivered([this, to](Packet&& pkt) { handle_arrival(std::move(pkt), to); });
    channel_by_pair_[{from, to}] = raw;
    channels_.push_back(std::move(ch));
  }
  routes_valid_ = false;
  channel_index_valid_ = false;
}

void Network::rebuild_channel_index() {
  index_stride_ = nodes_.size();
  channel_index_.assign(index_stride_ * index_stride_, nullptr);
  for (const auto& [pair, ch] : channel_by_pair_) {
    channel_index_[static_cast<std::size_t>(pair.first) * index_stride_ + pair.second] = ch;
  }
  channel_index_valid_ = true;
}

Channel& Network::channel(NodeId from, NodeId to) {
  Channel* ch = find_channel(from, to);
  if (ch == nullptr) throw std::out_of_range("channel: no such link");
  return *ch;
}

const Channel& Network::channel(NodeId from, NodeId to) const {
  const Channel* ch = find_channel(from, to);
  if (ch == nullptr) throw std::out_of_range("channel: no such link");
  return *ch;
}

bool Network::has_channel(NodeId from, NodeId to) const {
  return find_channel(from, to) != nullptr;
}

void Network::compute_routes() {
  const std::size_t n = nodes_.size();
  next_hop_.assign(n, std::vector<NodeId>(n, kInvalidNode));

  // Adjacency lists from the channel map.
  std::vector<std::vector<std::pair<NodeId, SimTime>>> adj(n);
  for (const auto& [pair, ch] : channel_by_pair_) {
    adj[pair.first].push_back({pair.second, ch->prop_delay() + kPerHopCost});
  }

  // Dijkstra from every source; record the first hop of each shortest path.
  for (NodeId src = 0; src < n; ++src) {
    std::vector<SimTime> dist(n, std::numeric_limits<SimTime>::max());
    std::vector<NodeId> first_hop(n, kInvalidNode);
    using Item = std::pair<SimTime, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[src] = 0;
    pq.push({0, src});
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (auto [v, w] : adj[u]) {
        const SimTime nd = d + w;
        if (nd < dist[v]) {
          dist[v] = nd;
          first_hop[v] = (u == src) ? v : first_hop[u];
          pq.push({nd, v});
        }
      }
    }
    next_hop_[src] = std::move(first_hop);
  }
  routes_valid_ = true;
  // The dense index shares the routing tables' lifecycle: packets only flow
  // after compute_routes, so the hot path always sees a valid index.
  rebuild_channel_index();
}

NodeId Network::next_hop(NodeId at, NodeId dst) const {
  VW_REQUIRE(routes_valid_, "Network: routes not computed before next_hop lookup");
  return next_hop_.at(at).at(dst);
}

SimTime Network::path_prop_delay(NodeId a, NodeId b) const {
  if (a == b) return 0;
  SimTime total = 0;
  NodeId at = a;
  while (at != b) {
    const NodeId nh = next_hop(at, b);
    if (nh == kInvalidNode) return -1;
    total += channel(at, nh).prop_delay();
    at = nh;
  }
  return total;
}

double Network::path_bottleneck_bps(NodeId a, NodeId b) const {
  if (a == b) return std::numeric_limits<double>::infinity();
  double bottleneck = std::numeric_limits<double>::infinity();
  NodeId at = a;
  while (at != b) {
    const NodeId nh = next_hop(at, b);
    if (nh == kInvalidNode) return 0.0;
    bottleneck = std::min(bottleneck, channel(at, nh).capacity_bps());
    at = nh;
  }
  return bottleneck;
}

bool Network::path_up(NodeId a, NodeId b) const {
  if (a == b) return true;
  NodeId at = a;
  while (at != b) {
    const NodeId nh = next_hop(at, b);
    if (nh == kInvalidNode) return false;
    if (channel(at, nh).is_down()) return false;
    at = nh;
  }
  return true;
}

void Network::send(Packet pkt) {
  VW_REQUIRE(pkt.flow.src < nodes_.size() && pkt.flow.dst < nodes_.size(),
             "Network::send: bad endpoint (src=", pkt.flow.src, " dst=", pkt.flow.dst, ")");
  sim::Simulator& src_sim = sim_for(pkt.flow.src);
  if (ssim_ == nullptr) {
    pkt.id = next_packet_id_++;
  } else {
    const std::uint32_t shard = node_shard_[pkt.flow.src];
    pkt.id = (static_cast<std::uint64_t>(shard + 1) << 48) |
             ++shard_local_[shard].next_packet_seq;
  }
  pkt.send_time = src_sim.now();
  if (pkt.flow.src == pkt.flow.dst) {
    // Loopback: deliver asynchronously to preserve event ordering semantics.
    src_sim.schedule_in(0, [this, &src_sim, pkt = std::move(pkt)]() mutable {
      pkt.wire_time = src_sim.now();
      fire_taps(pkt.flow.src, TapDirection::kOutgoing, src_sim.now(), pkt);
      deliver_to_host(std::move(pkt));
    });
    return;
  }
  forward(std::move(pkt), pkt.flow.src);
}

void Network::forward(Packet&& pkt, NodeId at) {
  const NodeId nh = next_hop(at, pkt.flow.dst);
  if (nh == kInvalidNode) return;  // unreachable: silently dropped (like IP)
  Channel* ch = find_channel(at, nh);
  VW_ASSERT(ch != nullptr, "Network::forward: next hop without a channel (", at, " -> ", nh, ")");
  ch->enqueue(std::move(pkt));
}

void Network::handle_arrival(Packet&& pkt, NodeId at) {
  if (at == pkt.flow.dst) {
    // Endpoint-delay emulation is the exception, not the rule: skip the map
    // probe entirely on topologies that never configured one.
    if (!endpoint_delays_.empty()) {
      const auto it = endpoint_delays_.find({pkt.flow.src, pkt.flow.dst});
      if (it != endpoint_delays_.end() && it->second > 0) {
        sim_for(at).schedule_in(it->second, [this, pkt = std::move(pkt)]() mutable {
          deliver_to_host(std::move(pkt));
        });
        return;
      }
    }
    deliver_to_host(std::move(pkt));
    return;
  }
  forward(std::move(pkt), at);
}

void Network::deliver_to_host(Packet&& pkt) {
  if (ssim_ == nullptr) {
    ++packets_delivered_;
  } else {
    ++shard_local_[node_shard_[pkt.flow.dst]].delivered;
  }
  fire_taps(pkt.flow.dst, TapDirection::kIncoming, sim_for(pkt.flow.dst).now(), pkt);
  auto& stack = host_stacks_[pkt.flow.dst];
  if (stack) stack(std::move(pkt));
}

void Network::set_host_stack(NodeId host, HostStackFn stack) {
  host_stacks_.at(host) = std::move(stack);
}

TapId Network::add_host_tap(NodeId host, TapFn fn) {
  const TapId id = next_tap_id_++;
  taps_.at(host).push_back({id, std::move(fn)});
  return id;
}

void Network::remove_host_tap(NodeId host, TapId id) {
  auto& list = taps_.at(host);
  std::erase_if(list, [id](const auto& entry) { return entry.first == id; });
}

void Network::fire_taps(NodeId host, TapDirection dir, SimTime t, const Packet& pkt) {
  auto& list = taps_[host];
  if (list.empty()) return;
  // One event object shared across the host's taps — no per-tap re-wrapping.
  const TapEvent ev{dir, t, &pkt};
  for (auto& [id, fn] : list) {
    fn(ev);
  }
}

void Network::add_endpoint_delay(NodeId a, NodeId b, SimTime one_way, bool bidirectional) {
  endpoint_delays_[{a, b}] = one_way;
  if (bidirectional) endpoint_delays_[{b, a}] = one_way;
}

void Network::set_link_down(NodeId a, NodeId b, bool down) {
  channel(a, b).set_down(down);
  channel(b, a).set_down(down);
}

void Network::set_link_loss(NodeId a, NodeId b, double p, const RngService& rngs) {
  channel(a, b).set_loss(p, rngs.stream(logcat("loss.", a, ".", b)));
  channel(b, a).set_loss(p, rngs.stream(logcat("loss.", b, ".", a)));
}

std::uint64_t Network::packets_delivered() const {
  std::uint64_t total = packets_delivered_;
  for (const ShardLocal& sl : shard_local_) total += sl.delivered;
  return total;
}

std::uint64_t Network::packets_dropped() const {
  std::uint64_t total = 0;
  for (const auto& ch : channels_) total += ch->stats().packets_dropped;
  return total;
}

// --- sharded execution ---------------------------------------------------

sim::Simulator& Network::sim_for(NodeId node) {
  return ssim_ == nullptr ? sim_ : ssim_->shard(node_shard_[node]);
}

std::uint32_t Network::node_shard(NodeId node) const {
  VW_REQUIRE(node < node_shard_.size(), "node_shard: unbound node ", node);
  return node_shard_[node];
}

std::uint32_t Network::shard_owner(const std::vector<std::uint32_t>& ns, NodeId from,
                                   NodeId to) const {
  // A host's access channel runs on the host's shard (its transport enqueues
  // there); a router channel runs on the downstream owner — the upstream
  // shard posts into it at serialization completion (cut-through).
  return nodes_[from].is_host ? ns[from] : ns[to];
}

bool Network::channel_is_cut(const std::vector<std::uint32_t>& ns, NodeId from,
                             NodeId to) const {
  const std::uint32_t owner = shard_owner(ns, from, to);
  // Delivery at a host — or at the packet's destination — runs on shard(to).
  if (ns[to] != owner) return true;
  if (nodes_[to].is_host) return false;
  // Router arrival forwards onto one of `to`'s outgoing channels; the
  // handoff targets that channel's owner. Conservative: any neighbor counts.
  for (auto it = channel_by_pair_.lower_bound({to, 0});
       it != channel_by_pair_.end() && it->first.first == to; ++it) {
    if (shard_owner(ns, to, it->first.second) != owner) return true;
  }
  return false;
}

Network::ShardPlan Network::partition(const PartitionOptions& options) const {
  const std::size_t n = nodes_.size();
  VW_REQUIRE(options.shards >= 1, "partition: need at least one shard");
  ShardPlan plan;
  plan.shards = options.shards;
  plan.node_shard.assign(n, 0);
  if (n == 0) return plan;

  // Union-find with the minimum node id as representative, so component
  // identity — and everything downstream — is independent of merge order.
  std::vector<NodeId> parent(n);
  std::iota(parent.begin(), parent.end(), NodeId{0});
  auto find = [&parent](NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  // Balance weight: hosts carry the event load (stacks, taps, access
  // links), routers are near-free under cut-through forwarding. Pure router
  // topologies fall back to node counting so the cap stays meaningful.
  std::size_t total_hosts = 0;
  for (const NodeInfo& node : nodes_) total_hosts += node.is_host ? 1 : 0;
  const bool weigh_hosts = total_hosts > 0;
  std::vector<std::size_t> weight(n);
  for (NodeId i = 0; i < n; ++i) {
    weight[i] = weigh_hosts ? (nodes_[i].is_host ? 1 : 0) : 1;
  }
  const std::size_t total_weight = weigh_hosts ? total_hosts : n;
  const std::size_t cap = (total_weight + options.shards - 1) / options.shards;

  auto unite = [&](NodeId a, NodeId b) {
    NodeId ra = find(a), rb = find(b);
    if (ra == rb) return;
    if (ra > rb) std::swap(ra, rb);
    parent[rb] = ra;
    weight[ra] += weight[rb];
  };

  // Pin groups merge unconditionally: shared upper-layer state outranks
  // balance.
  for (const std::vector<NodeId>& group : options.pin_groups) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      VW_REQUIRE(group[i] < n, "partition: pinned node out of range: ", group[i]);
      if (i > 0) unite(group[0], group[i]);
    }
  }

  // Greedy delay-ascending clustering under the cap: the links that remain
  // uncut are the low-delay ones, pushing the cut — and therefore the
  // lookahead — onto the highest-delay links the balance constraint allows.
  struct Edge {
    SimTime delay;
    NodeId a, b;
  };
  std::vector<Edge> edges;
  edges.reserve(channel_by_pair_.size() / 2);
  for (const auto& [pair, ch] : channel_by_pair_) {
    if (pair.first < pair.second) edges.push_back({ch->prop_delay(), pair.first, pair.second});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.delay != y.delay) return x.delay < y.delay;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  for (const Edge& e : edges) {
    const NodeId ra = find(e.a), rb = find(e.b);
    if (ra == rb) continue;
    if (weight[ra] + weight[rb] <= cap) unite(ra, rb);
  }

  // LPT bin packing: heaviest component to the least-loaded shard; ties by
  // minimum node id and lowest shard index keep the packing deterministic.
  struct Component {
    std::size_t weight;
    NodeId root;
  };
  std::vector<Component> components;
  for (NodeId i = 0; i < n; ++i) {
    if (find(i) == i) components.push_back({weight[i], i});
  }
  std::sort(components.begin(), components.end(), [](const Component& x, const Component& y) {
    if (x.weight != y.weight) return x.weight > y.weight;
    return x.root < y.root;
  });
  std::vector<std::size_t> load(options.shards, 0);
  std::vector<std::uint32_t> shard_of_root(n, 0);
  for (const Component& c : components) {
    std::uint32_t best = 0;
    for (std::uint32_t s = 1; s < options.shards; ++s) {
      if (load[s] < load[best]) best = s;
    }
    shard_of_root[c.root] = best;
    load[best] += c.weight;
  }
  for (NodeId i = 0; i < n; ++i) plan.node_shard[i] = shard_of_root[find(i)];

  // Lookahead: the minimum propagation delay over channels whose delivery
  // can land on a different shard than the one serializing them.
  SimTime lookahead = 0;
  for (const auto& [pair, ch] : channel_by_pair_) {
    if (!channel_is_cut(plan.node_shard, pair.first, pair.second)) continue;
    const SimTime d = ch->prop_delay();
    lookahead = lookahead == 0 ? d : std::min(lookahead, d);
  }
  plan.lookahead = lookahead;
  return plan;
}

void Network::bind_shards(sim::ShardedSimulator& ssim, const ShardPlan& plan) {
  VW_REQUIRE(routes_valid_, "bind_shards: compute_routes() first");
  VW_REQUIRE(ssim_ == nullptr, "bind_shards: already bound");
  VW_REQUIRE(plan.node_shard.size() == nodes_.size(),
             "bind_shards: plan is for a different topology");
  VW_REQUIRE(plan.shards <= ssim.shard_count(), "bind_shards: plan needs ", plan.shards,
             " shards, engine has ", ssim.shard_count());
  ssim_ = &ssim;
  node_shard_ = plan.node_shard;
  shard_local_.assign(ssim.shard_count(), ShardLocal{});
  if (plan.lookahead > 0) ssim.set_lookahead(plan.lookahead);
  for (const auto& chptr : channels_) {
    Channel& ch = *chptr;
    const std::uint32_t owner = shard_owner(node_shard_, ch.from(), ch.to());
    ch.set_simulator(ssim.shard(owner));
    if (channel_is_cut(node_shard_, ch.from(), ch.to())) {
      // A zero-delay cut would make the conservative window empty: the
      // partitioner avoids it whenever the balance cap allows; otherwise
      // the topology cannot be sharded along this edge.
      VW_REQUIRE(ch.prop_delay() >= 1, "bind_shards: cut channel ", ch.from(), " -> ",
                 ch.to(), " has zero propagation delay");
      ch.set_on_handoff([this, owner, to = ch.to()](Packet&& pkt, SimTime t) {
        route_handoff(std::move(pkt), to, t, owner);
      });
    }
  }
}

void Network::route_handoff(Packet&& pkt, NodeId at, SimTime t, std::uint32_t from_shard) {
  std::uint32_t target;
  if (at == pkt.flow.dst || nodes_[at].is_host) {
    target = node_shard_[at];
  } else {
    // Cut-through: resolve the router's forwarding decision here (static
    // routes make it pure) and post straight to the downstream owner, so
    // the transit router's own shard never executes a per-packet event.
    const NodeId nh = next_hop(at, pkt.flow.dst);
    if (nh == kInvalidNode) return;  // unreachable: silently dropped, as in forward()
    target = shard_owner(node_shard_, at, nh);
  }
  ssim_->post(from_shard, target, t,
              [this, at, pkt = std::move(pkt)]() mutable { handle_arrival(std::move(pkt), at); });
}

}  // namespace vw::net
