#include "net/network.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "util/check.hpp"
#include "util/log.hpp"

namespace vw::net {

namespace {
// Routing weight: propagation delay plus a small per-hop cost so equal-delay
// alternatives prefer fewer hops and ties break deterministically.
constexpr SimTime kPerHopCost = micros(1);
}  // namespace

Network::Network(sim::Simulator& sim) : sim_(sim) {}

NodeId Network::add_node(std::string name, bool is_host) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeInfo{std::move(name), is_host});
  host_stacks_.emplace_back();
  taps_.emplace_back();
  routes_valid_ = false;
  channel_index_valid_ = false;  // stride changes with the node count
  return id;
}

void Network::add_link(NodeId a, NodeId b, const LinkConfig& config) {
  VW_REQUIRE(a < nodes_.size() && b < nodes_.size(), "add_link: bad node (", a, ", ", b, ")");
  VW_REQUIRE(a != b, "add_link: self link on node ", a);
  VW_REQUIRE(!has_channel(a, b), "add_link: duplicate link ", a, " <-> ", b);
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    auto ch = std::make_unique<Channel>(sim_, static_cast<ChannelId>(channels_.size()), from, to,
                                        config.bits_per_sec, config.prop_delay,
                                        config.queue_limit_bytes);
    Channel* raw = ch.get();
    raw->set_on_serialized([this, from](Packet& pkt, SimTime t) {
      // Outgoing tap at the source host only: fires when the packet has
      // fully serialized onto the host's own access link (what a kernel
      // trace with NIC-level timestamps observes). Downstream hops must not
      // re-fire the tap or re-stamp the wire time.
      if (pkt.flow.src == from) {
        pkt.wire_time = t;
        fire_taps(pkt.flow.src, TapDirection::kOutgoing, t, pkt);
      }
    });
    raw->set_on_delivered([this, to](Packet&& pkt) { handle_arrival(std::move(pkt), to); });
    channel_by_pair_[{from, to}] = raw;
    channels_.push_back(std::move(ch));
  }
  routes_valid_ = false;
  channel_index_valid_ = false;
}

void Network::rebuild_channel_index() {
  index_stride_ = nodes_.size();
  channel_index_.assign(index_stride_ * index_stride_, nullptr);
  for (const auto& [pair, ch] : channel_by_pair_) {
    channel_index_[static_cast<std::size_t>(pair.first) * index_stride_ + pair.second] = ch;
  }
  channel_index_valid_ = true;
}

Channel& Network::channel(NodeId from, NodeId to) {
  Channel* ch = find_channel(from, to);
  if (ch == nullptr) throw std::out_of_range("channel: no such link");
  return *ch;
}

const Channel& Network::channel(NodeId from, NodeId to) const {
  const Channel* ch = find_channel(from, to);
  if (ch == nullptr) throw std::out_of_range("channel: no such link");
  return *ch;
}

bool Network::has_channel(NodeId from, NodeId to) const {
  return find_channel(from, to) != nullptr;
}

void Network::compute_routes() {
  const std::size_t n = nodes_.size();
  next_hop_.assign(n, std::vector<NodeId>(n, kInvalidNode));

  // Adjacency lists from the channel map.
  std::vector<std::vector<std::pair<NodeId, SimTime>>> adj(n);
  for (const auto& [pair, ch] : channel_by_pair_) {
    adj[pair.first].push_back({pair.second, ch->prop_delay() + kPerHopCost});
  }

  // Dijkstra from every source; record the first hop of each shortest path.
  for (NodeId src = 0; src < n; ++src) {
    std::vector<SimTime> dist(n, std::numeric_limits<SimTime>::max());
    std::vector<NodeId> first_hop(n, kInvalidNode);
    using Item = std::pair<SimTime, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[src] = 0;
    pq.push({0, src});
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (auto [v, w] : adj[u]) {
        const SimTime nd = d + w;
        if (nd < dist[v]) {
          dist[v] = nd;
          first_hop[v] = (u == src) ? v : first_hop[u];
          pq.push({nd, v});
        }
      }
    }
    next_hop_[src] = std::move(first_hop);
  }
  routes_valid_ = true;
  // The dense index shares the routing tables' lifecycle: packets only flow
  // after compute_routes, so the hot path always sees a valid index.
  rebuild_channel_index();
}

NodeId Network::next_hop(NodeId at, NodeId dst) const {
  VW_REQUIRE(routes_valid_, "Network: routes not computed before next_hop lookup");
  return next_hop_.at(at).at(dst);
}

SimTime Network::path_prop_delay(NodeId a, NodeId b) const {
  if (a == b) return 0;
  SimTime total = 0;
  NodeId at = a;
  while (at != b) {
    const NodeId nh = next_hop(at, b);
    if (nh == kInvalidNode) return -1;
    total += channel(at, nh).prop_delay();
    at = nh;
  }
  return total;
}

double Network::path_bottleneck_bps(NodeId a, NodeId b) const {
  if (a == b) return std::numeric_limits<double>::infinity();
  double bottleneck = std::numeric_limits<double>::infinity();
  NodeId at = a;
  while (at != b) {
    const NodeId nh = next_hop(at, b);
    if (nh == kInvalidNode) return 0.0;
    bottleneck = std::min(bottleneck, channel(at, nh).capacity_bps());
    at = nh;
  }
  return bottleneck;
}

bool Network::path_up(NodeId a, NodeId b) const {
  if (a == b) return true;
  NodeId at = a;
  while (at != b) {
    const NodeId nh = next_hop(at, b);
    if (nh == kInvalidNode) return false;
    if (channel(at, nh).is_down()) return false;
    at = nh;
  }
  return true;
}

void Network::send(Packet pkt) {
  VW_REQUIRE(pkt.flow.src < nodes_.size() && pkt.flow.dst < nodes_.size(),
             "Network::send: bad endpoint (src=", pkt.flow.src, " dst=", pkt.flow.dst, ")");
  pkt.id = next_packet_id_++;
  pkt.send_time = sim_.now();
  if (pkt.flow.src == pkt.flow.dst) {
    // Loopback: deliver asynchronously to preserve event ordering semantics.
    sim_.schedule_in(0, [this, pkt = std::move(pkt)]() mutable {
      pkt.wire_time = sim_.now();
      fire_taps(pkt.flow.src, TapDirection::kOutgoing, sim_.now(), pkt);
      deliver_to_host(std::move(pkt));
    });
    return;
  }
  forward(std::move(pkt), pkt.flow.src);
}

void Network::forward(Packet&& pkt, NodeId at) {
  const NodeId nh = next_hop(at, pkt.flow.dst);
  if (nh == kInvalidNode) return;  // unreachable: silently dropped (like IP)
  Channel* ch = find_channel(at, nh);
  VW_ASSERT(ch != nullptr, "Network::forward: next hop without a channel (", at, " -> ", nh, ")");
  ch->enqueue(std::move(pkt));
}

void Network::handle_arrival(Packet&& pkt, NodeId at) {
  if (at == pkt.flow.dst) {
    // Endpoint-delay emulation is the exception, not the rule: skip the map
    // probe entirely on topologies that never configured one.
    if (!endpoint_delays_.empty()) {
      const auto it = endpoint_delays_.find({pkt.flow.src, pkt.flow.dst});
      if (it != endpoint_delays_.end() && it->second > 0) {
        sim_.schedule_in(it->second, [this, pkt = std::move(pkt)]() mutable {
          deliver_to_host(std::move(pkt));
        });
        return;
      }
    }
    deliver_to_host(std::move(pkt));
    return;
  }
  forward(std::move(pkt), at);
}

void Network::deliver_to_host(Packet&& pkt) {
  ++packets_delivered_;
  fire_taps(pkt.flow.dst, TapDirection::kIncoming, sim_.now(), pkt);
  auto& stack = host_stacks_[pkt.flow.dst];
  if (stack) stack(std::move(pkt));
}

void Network::set_host_stack(NodeId host, HostStackFn stack) {
  host_stacks_.at(host) = std::move(stack);
}

TapId Network::add_host_tap(NodeId host, TapFn fn) {
  const TapId id = next_tap_id_++;
  taps_.at(host).push_back({id, std::move(fn)});
  return id;
}

void Network::remove_host_tap(NodeId host, TapId id) {
  auto& list = taps_.at(host);
  std::erase_if(list, [id](const auto& entry) { return entry.first == id; });
}

void Network::fire_taps(NodeId host, TapDirection dir, SimTime t, const Packet& pkt) {
  auto& list = taps_[host];
  if (list.empty()) return;
  // One event object shared across the host's taps — no per-tap re-wrapping.
  const TapEvent ev{dir, t, &pkt};
  for (auto& [id, fn] : list) {
    fn(ev);
  }
}

void Network::add_endpoint_delay(NodeId a, NodeId b, SimTime one_way, bool bidirectional) {
  endpoint_delays_[{a, b}] = one_way;
  if (bidirectional) endpoint_delays_[{b, a}] = one_way;
}

void Network::set_link_down(NodeId a, NodeId b, bool down) {
  channel(a, b).set_down(down);
  channel(b, a).set_down(down);
}

void Network::set_link_loss(NodeId a, NodeId b, double p, const RngService& rngs) {
  channel(a, b).set_loss(p, rngs.stream(logcat("loss.", a, ".", b)));
  channel(b, a).set_loss(p, rngs.stream(logcat("loss.", b, ".", a)));
}

std::uint64_t Network::packets_dropped() const {
  std::uint64_t total = 0;
  for (const auto& ch : channels_) total += ch->stats().packets_dropped;
  return total;
}

}  // namespace vw::net
