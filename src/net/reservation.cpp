#include "net/reservation.hpp"

namespace vw::net {

ReservationManager::~ReservationManager() {
  while (!reservations_.empty()) release(reservations_.begin()->first);
}

std::optional<ReservationId> ReservationManager::reserve_path(const FlowKey& flow,
                                                              double rate_bps,
                                                              std::int64_t burst_bytes) {
  // Walk the routed path, collecting hops.
  std::vector<std::pair<NodeId, NodeId>> hops;
  NodeId at = flow.src;
  while (at != flow.dst) {
    const NodeId nh = network_.next_hop(at, flow.dst);
    if (nh == kInvalidNode) return std::nullopt;  // unroutable
    hops.push_back({at, nh});
    at = nh;
  }

  // All-or-nothing admission.
  std::vector<std::pair<NodeId, NodeId>> granted;
  for (const auto& [from, to] : hops) {
    if (!network_.channel(from, to).add_reservation(flow, rate_bps, burst_bytes)) {
      for (const auto& [gf, gt] : granted) {
        network_.channel(gf, gt).remove_reservation(flow);
      }
      return std::nullopt;
    }
    granted.push_back({from, to});
  }

  const ReservationId id = next_id_++;
  reservations_[id] = Record{flow, rate_bps, std::move(hops)};
  return id;
}

void ReservationManager::release(ReservationId id) {
  auto it = reservations_.find(id);
  if (it == reservations_.end()) return;
  for (const auto& [from, to] : it->second.hops) {
    network_.channel(from, to).remove_reservation(it->second.flow);
  }
  reservations_.erase(it);
}

double ReservationManager::reserved_on(NodeId from, NodeId to) const {
  double total = 0;
  for (const auto& [id, rec] : reservations_) {
    for (const auto& hop : rec.hops) {
      if (hop.first == from && hop.second == to) total += rec.rate_bps;
    }
  }
  return total;
}

}  // namespace vw::net
