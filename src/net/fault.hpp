#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

// Scripted failure injection for chaos scenarios: a FaultPlan schedules
// link outages, flaps, loss episodes and arbitrary actions against the
// physical network at fixed virtual times, so a failure scenario is
// reproducible bit-for-bit under a given seed. All times are absolute
// simulation times; scheduling in the past is a contract violation.
//
// Against a sharded engine, faults run as stop-the-world global events: a
// link outage mutates both directions of a channel — usually owned by
// different shards — so it must execute with every shard quiescent at the
// fault time. The global-event protocol also keeps the outage ordered
// before any same-timestamp shard event, independent of shard count.

namespace vw::sim {
class ShardedSimulator;
}

namespace vw::net {

class FaultPlan {
 public:
  FaultPlan(sim::Simulator& sim, Network& network, Logger* logger = nullptr)
      : sim_(&sim), network_(network), logger_(logger) {}

  /// Sharded mode: every fault becomes a ShardedSimulator global event.
  FaultPlan(sim::ShardedSimulator& sim, Network& network, Logger* logger = nullptr)
      : ssim_(&sim), network_(network), logger_(logger) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Take both directions of the a<->b link down at `at`.
  void link_down(SimTime at, NodeId a, NodeId b);

  /// Bring both directions of the a<->b link back up at `at`.
  void link_up(SimTime at, NodeId a, NodeId b);

  /// Outage window: down at `from`, back up at `until`.
  void link_outage(SimTime from, SimTime until, NodeId a, NodeId b);

  /// `cycles` consecutive outages of `down_for` each, spaced `period` apart
  /// starting at `from` (period must exceed down_for).
  void link_flap(SimTime from, SimTime period, SimTime down_for, NodeId a, NodeId b,
                 std::size_t cycles);

  /// Set packet loss probability `p` on both directions at `at`.
  void link_loss(SimTime at, NodeId a, NodeId b, double p, const RngService& rngs);

  /// Run an arbitrary action at `at` (daemon kills, VM churn, ...).
  void at(SimTime at, std::function<void()> action, std::string label = "action");

  /// Fault events fired so far.
  std::uint64_t faults_injected() const { return injected_; }

 private:
  void schedule(SimTime at, std::string label, std::function<void()> action);
  SimTime current_time() const;

  sim::Simulator* sim_ = nullptr;
  sim::ShardedSimulator* ssim_ = nullptr;
  Network& network_;
  Logger* logger_;
  std::uint64_t injected_ = 0;
};

}  // namespace vw::net
