#include "net/fault.hpp"

#include <utility>

#include "sim/sharded.hpp"
#include "util/check.hpp"

namespace vw::net {

SimTime FaultPlan::current_time() const {
  return ssim_ != nullptr ? ssim_->now() : sim_->now();
}

void FaultPlan::schedule(SimTime at, std::string label, std::function<void()> action) {
  VW_REQUIRE(at >= current_time(), "FaultPlan: cannot schedule '", label,
             "' in the past: at=", at, " now=", current_time());
  auto fire = [this, label = std::move(label), action = std::move(action)] {
    ++injected_;
    if (logger_) logger_->warn("fault", logcat("t=", to_seconds(current_time()), "s ", label));
    action();
  };
  if (ssim_ != nullptr) {
    ssim_->schedule_global(at, std::move(fire));
  } else {
    sim_->schedule_at(at, std::move(fire));
  }
}

void FaultPlan::link_down(SimTime at, NodeId a, NodeId b) {
  schedule(at, logcat("link ", a, "<->", b, " DOWN"),
           [this, a, b] { network_.set_link_down(a, b, true); });
}

void FaultPlan::link_up(SimTime at, NodeId a, NodeId b) {
  schedule(at, logcat("link ", a, "<->", b, " UP"),
           [this, a, b] { network_.set_link_down(a, b, false); });
}

void FaultPlan::link_outage(SimTime from, SimTime until, NodeId a, NodeId b) {
  VW_REQUIRE(until > from, "FaultPlan: outage must end after it starts: from=", from,
             " until=", until);
  link_down(from, a, b);
  link_up(until, a, b);
}

void FaultPlan::link_flap(SimTime from, SimTime period, SimTime down_for, NodeId a, NodeId b,
                          std::size_t cycles) {
  VW_REQUIRE(period > down_for, "FaultPlan: flap period ", period,
             " must exceed down time ", down_for);
  for (std::size_t i = 0; i < cycles; ++i) {
    const SimTime start = from + static_cast<SimTime>(i) * period;
    link_outage(start, start + down_for, a, b);
  }
}

void FaultPlan::link_loss(SimTime at, NodeId a, NodeId b, double p, const RngService& rngs) {
  schedule(at, logcat("link ", a, "<->", b, " loss=", p),
           [this, a, b, p, &rngs] { network_.set_link_loss(a, b, p, rngs); });
}

void FaultPlan::at(SimTime at_time, std::function<void()> action, std::string label) {
  schedule(at_time, std::move(label), std::move(action));
}

}  // namespace vw::net
