#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

// One direction of a physical link: a drop-tail FIFO queue served at the
// channel capacity, followed by a fixed propagation delay. This is the
// mechanism that makes self-induced congestion observable: trains sent
// faster than the residual capacity build queueing delay, which shows up as
// an increasing RTT trend in the ACKs.
//
// Reservations (paper opportunity 4): a flow may reserve a guaranteed rate.
// Reserved traffic is policed by a token bucket and served from a strict
// priority queue ahead of best effort — the IntServ guaranteed-service
// shape of the optical-reservation substrate the paper cites.

namespace vw::net {

using ChannelId = std::uint32_t;

struct ChannelStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_dropped = 0;       ///< queue overflow (drop tail)
  std::uint64_t packets_lost = 0;          ///< random loss injection
  std::uint64_t packets_down_dropped = 0;  ///< dropped while the link was down
  std::uint64_t bytes_serialized = 0;      ///< total bytes that completed serialization
  std::uint64_t priority_packets = 0;      ///< packets served from the reserved class
};

class Channel {
 public:
  /// `on_serialized` fires when a packet finishes serializing onto the wire
  /// (used for source-host outgoing taps); the packet is mutable so the
  /// network can stamp `wire_time` without const_cast before taps observe
  /// it. `on_delivered` fires when it arrives at the receiving end.
  using SerializedFn = SmallFn<void(Packet&, SimTime)>;
  using DeliveredFn = SmallFn<void(Packet&&)>;
  /// Cross-shard propagation: when set, a serialized packet is handed to
  /// this hook with its absolute arrival time instead of being scheduled on
  /// the local engine (the sharded network routes it into the destination
  /// shard's mailbox). Unset — the default — propagation stays a local
  /// schedule_in and the channel behaves exactly as before sharding.
  using HandoffFn = SmallFn<void(Packet&&, SimTime)>;

  Channel(sim::Simulator& sim, ChannelId id, NodeId from, NodeId to, double bits_per_sec,
          SimTime prop_delay, std::int64_t queue_limit_bytes);

  /// Enqueue for transmission; drops (returning false) when the queue is full.
  bool enqueue(Packet pkt);

  ChannelId id() const { return id_; }
  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  double capacity_bps() const { return bits_per_sec_; }
  SimTime prop_delay() const { return prop_delay_; }
  std::int64_t queue_limit_bytes() const { return queue_limit_bytes_; }
  std::int64_t queued_bytes() const { return be_bytes_ + prio_bytes_; }
  const ChannelStats& stats() const { return stats_; }

  /// Change capacity at runtime (takes effect for subsequently serialized
  /// packets); used by scenario scripts.
  void set_capacity_bps(double bps);

  // --- failure injection ------------------------------------------------------
  /// Random loss: each enqueued packet is independently dropped with
  /// probability `p` (0 disables). Deterministic via the supplied stream.
  void set_loss(double p, Rng rng);
  double loss_probability() const { return loss_p_; }

  /// Take the link down or back up. Taking the link down drops every
  /// queued packet (both classes) into `packets_down_dropped` and cancels
  /// the in-flight serialization, so upper layers see a genuine outage;
  /// packets already past serialization (in propagation) still arrive.
  void set_down(bool down);
  bool is_down() const { return down_; }

  // --- reservations -------------------------------------------------------------
  /// Guarantee `rate_bps` to `flow` on this channel. Conforming packets
  /// (token bucket: rate_bps, burst `burst_bytes`) are served with strict
  /// priority; excess reverts to best effort. Returns false when the sum of
  /// reservations would exceed the capacity.
  bool add_reservation(const FlowKey& flow, double rate_bps, std::int64_t burst_bytes = 32'768);
  void remove_reservation(const FlowKey& flow);
  double reserved_bps() const;
  bool has_reservation(const FlowKey& flow) const { return reservations_.contains(flow); }

  /// Instantaneous queueing delay a newly arriving best-effort packet would
  /// see (total backlog over capacity).
  SimTime current_queue_delay() const;

  void set_on_serialized(SerializedFn fn) { on_serialized_ = std::move(fn); }
  void set_on_delivered(DeliveredFn fn) { on_delivered_ = std::move(fn); }
  void set_on_handoff(HandoffFn fn) { on_handoff_ = std::move(fn); }

  /// Rebind the engine that runs this channel's service and propagation
  /// events (shard binding). Only legal while the channel is idle — an
  /// in-flight serialization holds an event on the old engine.
  void set_simulator(sim::Simulator& sim);

 private:
  struct Reservation {
    double rate_bps = 0;
    std::int64_t burst_bytes = 0;
    double tokens = 0;  ///< bytes
    SimTime last_refill = 0;
  };

  void start_service();
  void finish_service();

  sim::Simulator* sim_;  ///< owning shard's engine; rebindable via set_simulator
  ChannelId id_;
  NodeId from_;
  NodeId to_;
  double bits_per_sec_;
  SimTime prop_delay_;
  std::int64_t queue_limit_bytes_;
  std::int64_t be_bytes_ = 0;    ///< best-effort backlog
  std::int64_t prio_bytes_ = 0;  ///< reserved-class backlog (own buffer)
  std::deque<Packet> priority_queue_;
  std::deque<Packet> best_effort_queue_;
  bool serving_ = false;
  bool serving_priority_ = false;
  sim::EventHandle service_event_;  ///< pending finish_service (cancelled on down)
  double loss_p_ = 0;
  std::optional<Rng> loss_rng_;
  bool down_ = false;
  std::unordered_map<FlowKey, Reservation, FlowKeyHash> reservations_;
  ChannelStats stats_;
  SerializedFn on_serialized_;
  DeliveredFn on_delivered_;
  HandoffFn on_handoff_;
};

}  // namespace vw::net
