#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>

#include "util/small_fn.hpp"
#include "util/time.hpp"

// The wire-level packet model. Packets are value types; the optional
// user_data pointer carries opaque upper-layer objects (e.g. an encapsulated
// VNET Ethernet frame riding in a UDP datagram) without the network layer
// knowing their type.

namespace vw::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffu;

enum class Protocol : std::uint8_t { kTcp, kUdp };

/// 5-tuple identifying a flow end-to-end.
struct FlowKey {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Protocol proto = Protocol::kTcp;

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;

  /// The reverse direction of this flow (ACK path).
  FlowKey reversed() const { return FlowKey{dst, src, dst_port, src_port, proto}; }
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    std::size_t h = std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(k.src) << 32) | k.dst);
    const std::uint64_t ports = (static_cast<std::uint64_t>(k.src_port) << 24) |
                                (static_cast<std::uint64_t>(k.dst_port) << 8) |
                                static_cast<std::uint64_t>(k.proto);
    return h ^ (std::hash<std::uint64_t>{}(ports) + 0x9e3779b9u + (h << 6) + (h >> 2));
  }
};

struct Packet {
  FlowKey flow;
  std::uint32_t payload_bytes = 0;  ///< transport payload carried
  std::uint32_t header_bytes = 40;  ///< IP+transport header overhead

  // Transport header fields (interpreted by vw::transport).
  std::uint64_t seq = 0;  ///< TCP: first payload byte offset; UDP: datagram id
  std::uint64_t ack = 0;  ///< TCP: cumulative ACK (next expected byte)
  bool is_ack = false;
  bool syn = false;
  bool fin = false;

  /// Opaque upper-layer object delivered with the packet (UDP datagrams).
  /// The pointer rides in the moved packet hop to hop, so its refcount is
  /// touched exactly once per end-to-end delivery; receivers of the final
  /// Packet&& may move the payload out instead of copying it.
  std::shared_ptr<std::any> user_data;

  // Stamped by the network.
  std::uint64_t id = 0;       ///< unique per Network, for tracing
  SimTime send_time = 0;      ///< when handed to the source NIC
  SimTime wire_time = 0;      ///< when serialization onto the first link completed

  std::uint32_t size_bytes() const { return payload_bytes + header_bytes; }
};

/// What a host-level tap (Wren's packet trace facility) observes.
enum class TapDirection : std::uint8_t { kOutgoing, kIncoming };

struct TapEvent {
  TapDirection direction;
  SimTime timestamp;  ///< NIC serialization completion (out) or delivery (in)
  const Packet* packet;
};

using TapFn = SmallFn<void(const TapEvent&)>;

}  // namespace vw::net
