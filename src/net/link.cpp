#include "net/link.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace vw::net {

Channel::Channel(sim::Simulator& sim, ChannelId id, NodeId from, NodeId to, double bits_per_sec,
                 SimTime prop_delay, std::int64_t queue_limit_bytes)
    : sim_(&sim),
      id_(id),
      from_(from),
      to_(to),
      bits_per_sec_(bits_per_sec),
      prop_delay_(prop_delay),
      queue_limit_bytes_(queue_limit_bytes) {
  VW_REQUIRE(bits_per_sec_ > 0, "Channel: capacity must be positive, got ", bits_per_sec_);
  VW_REQUIRE(prop_delay_ >= 0, "Channel: negative propagation delay ", prop_delay_);
}

void Channel::set_simulator(sim::Simulator& sim) {
  VW_REQUIRE(!serving_, "Channel::set_simulator: rebind while serving");
  sim_ = &sim;
}

void Channel::set_capacity_bps(double bps) {
  VW_REQUIRE(bps > 0, "Channel: capacity must be positive, got ", bps);
  bits_per_sec_ = bps;
}

void Channel::set_loss(double p, Rng rng) {
  VW_REQUIRE(p >= 0 && p <= 1, "Channel: loss probability out of range: ", p);
  loss_p_ = p;
  loss_rng_ = rng;
}

void Channel::set_down(bool down) {
  down_ = down;
  if (!down) return;
  // Flush both queues: the link carries nothing while down, including the
  // packet currently serializing. Deliveries already in propagation are
  // past this link and still arrive.
  stats_.packets_down_dropped +=
      priority_queue_.size() + best_effort_queue_.size();
  priority_queue_.clear();
  best_effort_queue_.clear();
  prio_bytes_ = 0;
  be_bytes_ = 0;
  if (serving_) {
    sim_->cancel(service_event_);
    service_event_ = sim::EventHandle{};
    serving_ = false;
  }
}

SimTime Channel::current_queue_delay() const {
  return transmission_time(queued_bytes(), bits_per_sec_);
}

double Channel::reserved_bps() const {
  // Sum in sorted flow order: reservations_ is a hash map and floating-point
  // addition is not associative, so hash-order summation would make the
  // admission threshold depend on container layout instead of on the
  // reservation set itself.
  std::vector<std::pair<FlowKey, double>> rates;
  rates.reserve(reservations_.size());
  // vwlint: unordered-ok(collection only; order normalized by the sort below)
  for (const auto& [flow, r] : reservations_) rates.emplace_back(flow, r.rate_bps);
  std::sort(rates.begin(), rates.end());
  double total = 0;
  for (const auto& [flow, rate] : rates) total += rate;
  return total;
}

bool Channel::add_reservation(const FlowKey& flow, double rate_bps, std::int64_t burst_bytes) {
  VW_REQUIRE(rate_bps > 0 && burst_bytes > 0, "Channel: bad reservation parameters (rate=",
             rate_bps, " burst=", burst_bytes, ")");
  const double existing = reservations_.contains(flow) ? reservations_.at(flow).rate_bps : 0;
  if (reserved_bps() - existing + rate_bps > bits_per_sec_) return false;
  Reservation r;
  r.rate_bps = rate_bps;
  r.burst_bytes = burst_bytes;
  r.tokens = static_cast<double>(burst_bytes);  // start full
  r.last_refill = sim_->now();
  reservations_[flow] = r;
  return true;
}

void Channel::remove_reservation(const FlowKey& flow) { reservations_.erase(flow); }

bool Channel::enqueue(Packet pkt) {
  if (down_) {
    ++stats_.packets_down_dropped;
    return false;
  }
  if (loss_p_ > 0 && loss_rng_ && loss_rng_->chance(loss_p_)) {
    ++stats_.packets_lost;
    return false;
  }
  const std::int64_t size = pkt.size_bytes();

  // Classify first: reserved flows with available tokens ride the priority
  // queue, which has its own buffer — a best-effort flood must not be able
  // to starve reserved admissions at the drop-tail stage.
  bool priority = false;
  if (auto it = reservations_.find(pkt.flow); it != reservations_.end()) {
    Reservation& r = it->second;
    r.tokens = std::min(static_cast<double>(r.burst_bytes),
                        r.tokens + r.rate_bps / 8.0 * to_seconds(sim_->now() - r.last_refill));
    r.last_refill = sim_->now();
    if (r.tokens >= static_cast<double>(size)) {
      r.tokens -= static_cast<double>(size);
      priority = true;
    }
  }

  std::int64_t& class_bytes = priority ? prio_bytes_ : be_bytes_;
  if (class_bytes + size > queue_limit_bytes_) {
    ++stats_.packets_dropped;
    return false;
  }
  class_bytes += size;
  ++stats_.packets_sent;
  (priority ? priority_queue_ : best_effort_queue_).push_back(std::move(pkt));
  if (!serving_) start_service();
  return true;
}

void Channel::start_service() {
  serving_priority_ = !priority_queue_.empty();
  std::deque<Packet>& queue = serving_priority_ ? priority_queue_ : best_effort_queue_;
  if (queue.empty()) return;
  serving_ = true;
  const SimTime done = sim_->now() + transmission_time(queue.front().size_bytes(), bits_per_sec_);
  service_event_ = sim_->schedule_at(done, [this] { finish_service(); });
}

void Channel::finish_service() {
  std::deque<Packet>& queue = serving_priority_ ? priority_queue_ : best_effort_queue_;
  VW_ASSERT(!queue.empty(), "Channel::finish_service: serving an empty queue");
  Packet pkt = std::move(queue.front());
  queue.pop_front();
  const std::int64_t size = pkt.size_bytes();
  (serving_priority_ ? prio_bytes_ : be_bytes_) -= size;
  VW_ASSERT(prio_bytes_ >= 0 && be_bytes_ >= 0,
            "Channel: queued-byte accounting went negative");
  stats_.bytes_serialized += static_cast<std::uint64_t>(size);
  if (serving_priority_) ++stats_.priority_packets;

  // serving_ stays true through the callbacks: a zero-propagation delivery
  // can recursively enqueue onto this very channel, and must not start a
  // second concurrent service. The serialized hook sees the packet mutable
  // so the network can stamp wire_time before the outgoing tap fires.
  if (on_serialized_) on_serialized_(pkt, sim_->now());
  if (on_handoff_) {
    // Sharded propagation: the network decides which shard runs the arrival
    // and posts it there; this channel's engine schedules nothing further.
    on_handoff_(std::move(pkt), sim_->now() + prop_delay_);
  } else if (prop_delay_ == 0) {
    if (on_delivered_) on_delivered_(std::move(pkt));
  } else {
    sim_->schedule_in(prop_delay_, [this, pkt = std::move(pkt)]() mutable {
      if (on_delivered_) on_delivered_(std::move(pkt));
    });
  }

  serving_ = false;
  if (!priority_queue_.empty() || !best_effort_queue_.empty()) start_service();
}

}  // namespace vw::net
