#include "soap/xml.hpp"

#include <cctype>
#include <stdexcept>

namespace vw::soap {

const XmlNode* XmlNode::child(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(std::string_view child_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c.name == child_name) out.push_back(&c);
  }
  return out;
}

std::string XmlNode::child_text(std::string_view child_name) const {
  const XmlNode* c = child(child_name);
  return c ? c->text : std::string{};
}

XmlNode& XmlNode::add_child(std::string child_name) {
  children.push_back(XmlNode{.name = std::move(child_name), .attributes = {}, .text = {},
                             .children = {}});
  return children.back();
}

XmlNode& XmlNode::add_text_child(std::string child_name, std::string value) {
  XmlNode& c = add_child(std::move(child_name));
  c.text = std::move(value);
  return c;
}

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

void serialize(const XmlNode& node, std::string& out) {
  out += '<';
  out += node.name;
  for (const auto& [k, v] : node.attributes) {
    out += ' ';
    out += k;
    out += "=\"";
    out += xml_escape(v);
    out += '"';
  }
  if (node.text.empty() && node.children.empty()) {
    out += "/>";
    return;
  }
  out += '>';
  out += xml_escape(node.text);
  for (const auto& c : node.children) serialize(c, out);
  out += "</";
  out += node.name;
  out += '>';
}

class Parser {
 public:
  explicit Parser(std::string_view doc) : doc_(doc) {}

  XmlNode parse() {
    skip_ws_and_prolog();
    XmlNode root = parse_element();
    skip_ws();
    if (pos_ != doc_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("XML parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  char peek() {
    if (pos_ >= doc_.size()) fail("unexpected end of document");
    return doc_[pos_];
  }

  bool starts_with(std::string_view s) const { return doc_.substr(pos_).starts_with(s); }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < doc_.size() && std::isspace(static_cast<unsigned char>(doc_[pos_]))) ++pos_;
  }

  void skip_ws_and_prolog() {
    skip_ws();
    while (starts_with("<?")) {
      const auto end = doc_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated processing instruction");
      pos_ = end + 2;
      skip_ws();
    }
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < doc_.size()) {
      const char c = doc_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == ':' || c == '_' || c == '-' ||
          c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a name");
    return std::string(doc_.substr(start, pos_ - start));
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      const auto semi = raw.find(';', i);
      if (semi == std::string_view::npos) fail("unterminated entity");
      const std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") out += '&';
      else if (ent == "lt") out += '<';
      else if (ent == "gt") out += '>';
      else if (ent == "quot") out += '"';
      else if (ent == "apos") out += '\'';
      else fail("unknown entity: " + std::string(ent));
      i = semi + 1;
    }
    return out;
  }

  XmlNode parse_element() {
    expect('<');
    XmlNode node;
    node.name = parse_name();
    // Attributes.
    for (;;) {
      skip_ws();
      const char c = peek();
      if (c == '/' || c == '>') break;
      std::string attr = parse_name();
      skip_ws();
      expect('=');
      skip_ws();
      const char quote = peek();
      if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
      ++pos_;
      const auto end = doc_.find(quote, pos_);
      if (end == std::string_view::npos) fail("unterminated attribute value");
      node.attributes[attr] = decode_entities(doc_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
    if (peek() == '/') {
      ++pos_;
      expect('>');
      return node;
    }
    expect('>');
    // Content: text and child elements until the closing tag.
    for (;;) {
      if (pos_ >= doc_.size()) fail("unterminated element <" + node.name + ">");
      if (starts_with("</")) {
        pos_ += 2;
        const std::string closing = parse_name();
        if (closing != node.name) fail("mismatched closing tag: " + closing);
        skip_ws();
        expect('>');
        return node;
      }
      if (starts_with("<!--")) {
        const auto end = doc_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (peek() == '<') {
        node.children.push_back(parse_element());
        continue;
      }
      const auto next = doc_.find('<', pos_);
      if (next == std::string_view::npos) fail("unterminated element content");
      node.text += decode_entities(doc_.substr(pos_, next - pos_));
      pos_ = next;
    }
  }

  std::string_view doc_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_xml(const XmlNode& node) {
  std::string out;
  serialize(node, out);
  return out;
}

XmlNode parse_xml(std::string_view doc) { return Parser(doc).parse(); }

XmlNode make_envelope(XmlNode body_content) {
  XmlNode env;
  env.name = "soap:Envelope";
  env.attributes["xmlns:soap"] = std::string(kSoapEnvNs);
  XmlNode& body = env.add_child("soap:Body");
  body.children.push_back(std::move(body_content));
  return env;
}

XmlNode extract_body(const XmlNode& envelope) {
  if (envelope.name != "soap:Envelope") throw std::runtime_error("not a SOAP envelope");
  const XmlNode* body = envelope.child("soap:Body");
  if (body == nullptr || body->children.size() != 1) {
    throw std::runtime_error("SOAP body missing or not a single element");
  }
  return body->children.front();
}

XmlNode make_fault(std::string_view code, std::string_view message) {
  XmlNode fault;
  fault.name = "soap:Fault";
  fault.add_text_child("faultcode", std::string(code));
  fault.add_text_child("faultstring", std::string(message));
  return fault;
}

bool is_fault(const XmlNode& body) { return body.name == "soap:Fault"; }

}  // namespace vw::soap
