#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

// Small XML document model + serializer + parser — enough to carry real
// SOAP envelopes for Wren's measurement interface. Handles elements,
// attributes, text content and the five standard entities; no namespaces
// processing (prefixes are kept verbatim in names), no CDATA/comments.

namespace vw::soap {

struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::string text;  ///< concatenated character data directly inside this node
  std::vector<XmlNode> children;

  /// First child with the given name; nullptr when absent.
  const XmlNode* child(std::string_view child_name) const;
  /// All children with the given name.
  std::vector<const XmlNode*> children_named(std::string_view child_name) const;
  /// Text of the first child with the given name; empty when absent.
  std::string child_text(std::string_view child_name) const;

  /// Convenience builders.
  XmlNode& add_child(std::string child_name);
  XmlNode& add_text_child(std::string child_name, std::string value);
};

/// Serialize a node tree to an XML string (no declaration, no pretty print).
std::string to_xml(const XmlNode& node);

/// Escape character data (& < > " ').
std::string xml_escape(std::string_view s);

/// Parse an XML document; throws std::runtime_error on malformed input.
XmlNode parse_xml(std::string_view doc);

// --- SOAP envelope helpers ---------------------------------------------------

inline constexpr std::string_view kSoapEnvNs = "http://schemas.xmlsoap.org/soap/envelope/";

/// Wrap `body_content` in <soap:Envelope><soap:Body>...</>.
XmlNode make_envelope(XmlNode body_content);

/// Extract (a copy of) the single body content element from an envelope;
/// throws std::runtime_error when the document is not a SOAP envelope.
XmlNode extract_body(const XmlNode& envelope);

/// Build a SOAP Fault body element.
XmlNode make_fault(std::string_view code, std::string_view message);

/// True when the body element is a Fault.
bool is_fault(const XmlNode& body);

}  // namespace vw::soap
