#include "soap/telemetry.hpp"

#include <charconv>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace vw::soap {

namespace {

std::string fmt(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, ptr);
}

std::uint64_t parse_u64(const std::string& s) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("bad unsigned integer: " + s);
  }
  return value;
}

double parse_double(const std::string& s) {
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  if (pos != s.size()) throw std::invalid_argument("bad number: " + s);
  return v;
}

obs::InstrumentKind parse_kind(const std::string& s) {
  if (s == "counter") return obs::InstrumentKind::kCounter;
  if (s == "gauge") return obs::InstrumentKind::kGauge;
  if (s == "histogram") return obs::InstrumentKind::kHistogram;
  throw std::invalid_argument("bad instrument kind: " + s);
}

/// Attribute lookup that reads as a double, with `fallback` when absent
/// (omitted attributes encode "no data", e.g. an empty histogram's min).
double attr_double(const XmlNode& node, const std::string& key, double fallback) {
  auto it = node.attributes.find(key);
  return it == node.attributes.end() ? fallback : parse_double(it->second);
}

}  // namespace

TelemetryService::TelemetryService(RpcRegistry& registry, obs::MetricsRegistry& metrics,
                                   obs::EventTracer* tracer, std::string endpoint)
    : registry_(registry), metrics_(metrics), tracer_(tracer), endpoint_(std::move(endpoint)) {
  registry_.register_method(endpoint_, "QueryMetrics",
                            [this](const XmlNode& r) { return handle_query_metrics(r); });
  registry_.register_method(endpoint_, "StreamEvents",
                            [this](const XmlNode& r) { return handle_stream_events(r); });
}

TelemetryService::~TelemetryService() { registry_.unregister_endpoint(endpoint_); }

XmlNode TelemetryService::handle_query_metrics(const XmlNode& request) const {
  const obs::MetricsSnapshot snap = metrics_.snapshot(request.child_text("prefix"));
  XmlNode resp;
  resp.name = "QueryMetricsResponse";
  resp.attributes["taken_at_ns"] = std::to_string(snap.taken_at);
  for (const obs::MetricValue& m : snap.metrics) {
    XmlNode& node = resp.add_child("metric");
    node.attributes["name"] = m.name;
    node.attributes["kind"] = std::string(obs::kind_name(m.kind));
    switch (m.kind) {
      case obs::InstrumentKind::kCounter:
        node.attributes["count"] = std::to_string(m.count);
        break;
      case obs::InstrumentKind::kGauge:
        node.attributes["value"] = fmt(m.value);
        break;
      case obs::InstrumentKind::kHistogram: {
        const obs::Histogram::Snapshot& h = m.histogram;
        node.attributes["count"] = std::to_string(h.count);
        node.attributes["sum"] = fmt(h.sum);
        if (h.count > 0) {
          // Empty histograms omit the extremes entirely — an explicit "no
          // data" is better than a NaN token crossing the wire.
          node.attributes["min"] = fmt(h.min);
          node.attributes["max"] = fmt(h.max);
        }
        for (std::size_t k = 0; k < obs::Histogram::kBuckets; ++k) {
          if (h.buckets[k] == 0) continue;
          XmlNode& bucket = node.add_child("bucket");
          bucket.attributes["index"] = std::to_string(k);
          bucket.attributes["count"] = std::to_string(h.buckets[k]);
        }
        break;
      }
    }
  }
  return resp;
}

XmlNode TelemetryService::handle_stream_events(const XmlNode& request) const {
  if (tracer_ == nullptr) {
    throw std::runtime_error("telemetry endpoint has no event tracer attached");
  }
  const std::string since_text = request.child_text("since");
  const std::uint64_t since = since_text.empty() ? 0 : parse_u64(since_text);
  const std::string max_text = request.child_text("max");
  const std::size_t max_events = max_text.empty() ? 1024 : parse_u64(max_text);

  const auto [events, last_id] = tracer_->events_since(since, max_events);
  XmlNode resp;
  resp.name = "StreamEventsResponse";
  resp.attributes["last_id"] = std::to_string(last_id);
  for (const obs::TraceEvent& ev : events) {
    XmlNode& node = resp.add_child("event");
    node.attributes["id"] = std::to_string(ev.id);
    node.attributes["ts"] = std::to_string(ev.ts);
    node.attributes["dur"] = std::to_string(ev.dur);
    node.attributes["ph"] = std::string(1, static_cast<char>(ev.phase));
    node.attributes["name"] = ev.name;
    node.attributes["cat"] = ev.category;
    for (const auto& [key, value] : ev.args) {
      XmlNode& arg = node.add_child("arg");
      arg.attributes["key"] = key;
      arg.attributes["value"] = value;
    }
  }
  return resp;
}

TelemetryClient::TelemetryClient(const RpcRegistry& registry, std::string endpoint)
    : registry_(registry), endpoint_(std::move(endpoint)) {}

obs::MetricsSnapshot TelemetryClient::query_metrics(const std::string& prefix) const {
  XmlNode request;
  request.name = "QueryMetrics";
  if (!prefix.empty()) request.add_text_child("prefix", prefix);
  const XmlNode resp = registry_.call(endpoint_, "QueryMetrics", request);

  obs::MetricsSnapshot snap;
  snap.taken_at = static_cast<SimTime>(parse_u64(resp.attributes.at("taken_at_ns")));
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (const XmlNode& node : resp.children) {
    if (node.name != "metric") continue;
    obs::MetricValue m;
    m.name = node.attributes.at("name");
    m.kind = parse_kind(node.attributes.at("kind"));
    switch (m.kind) {
      case obs::InstrumentKind::kCounter:
        m.count = parse_u64(node.attributes.at("count"));
        break;
      case obs::InstrumentKind::kGauge:
        m.value = parse_double(node.attributes.at("value"));
        break;
      case obs::InstrumentKind::kHistogram: {
        m.histogram.count = parse_u64(node.attributes.at("count"));
        m.histogram.sum = attr_double(node, "sum", 0.0);
        m.histogram.min = attr_double(node, "min", kNaN);
        m.histogram.max = attr_double(node, "max", kNaN);
        for (const XmlNode& bucket : node.children) {
          if (bucket.name != "bucket") continue;
          const std::size_t index = parse_u64(bucket.attributes.at("index"));
          VW_REQUIRE(index < obs::Histogram::kBuckets,
                     "QueryMetrics: bucket index ", index, " out of range");
          m.histogram.buckets[index] = parse_u64(bucket.attributes.at("count"));
        }
        m.count = m.histogram.count;
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

std::pair<std::vector<obs::TraceEvent>, std::uint64_t> TelemetryClient::stream_events(
    std::uint64_t since, std::size_t max_events) const {
  XmlNode request;
  request.name = "StreamEvents";
  request.add_text_child("since", std::to_string(since));
  request.add_text_child("max", std::to_string(max_events));
  const XmlNode resp = registry_.call(endpoint_, "StreamEvents", request);

  std::pair<std::vector<obs::TraceEvent>, std::uint64_t> out;
  out.second = parse_u64(resp.attributes.at("last_id"));
  for (const XmlNode& node : resp.children) {
    if (node.name != "event") continue;
    obs::TraceEvent ev;
    ev.id = parse_u64(node.attributes.at("id"));
    ev.ts = static_cast<SimTime>(parse_u64(node.attributes.at("ts")));
    ev.dur = static_cast<SimTime>(parse_u64(node.attributes.at("dur")));
    const std::string& ph = node.attributes.at("ph");
    VW_REQUIRE(ph.size() == 1 && (ph[0] == 'X' || ph[0] == 'i'),
               "StreamEvents: unknown event phase '", ph, "'");
    ev.phase = static_cast<obs::EventPhase>(ph[0]);
    ev.name = node.attributes.at("name");
    ev.category = node.attributes.at("cat");
    for (const XmlNode& arg : node.children) {
      if (arg.name != "arg") continue;
      ev.args.emplace_back(arg.attributes.at("key"), arg.attributes.at("value"));
    }
    out.first.push_back(std::move(ev));
  }
  return out;
}

}  // namespace vw::soap
