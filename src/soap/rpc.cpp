#include "soap/rpc.hpp"

namespace vw::soap {

void RpcRegistry::register_method(const std::string& endpoint, const std::string& method,
                                  Handler handler) {
  handlers_[{endpoint, method}] = std::move(handler);
}

void RpcRegistry::unregister_endpoint(const std::string& endpoint) {
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if (it->first.first == endpoint) {
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

bool RpcRegistry::has_endpoint(const std::string& endpoint) const {
  auto it = handlers_.lower_bound({endpoint, ""});
  return it != handlers_.end() && it->first.first == endpoint;
}

XmlNode RpcRegistry::call(const std::string& endpoint, const std::string& method,
                          const XmlNode& request) const {
  auto it = handlers_.find({endpoint, method});
  if (it == handlers_.end()) {
    throw std::out_of_range("SOAP endpoint/method not found: " + endpoint + "#" + method);
  }

  // Serialize request through real XML text, as the wire would.
  const std::string request_doc = to_xml(make_envelope(request));
  const XmlNode request_body = extract_body(parse_xml(request_doc));

  XmlNode response_body;
  try {
    response_body = it->second(request_body);
  } catch (const std::exception& e) {
    response_body = make_fault("soap:Server", e.what());
  }

  const std::string response_doc = to_xml(make_envelope(std::move(response_body)));
  XmlNode body = extract_body(parse_xml(response_doc));
  if (is_fault(body)) {
    throw SoapFault(body.child_text("faultcode"), body.child_text("faultstring"));
  }
  return body;
}

}  // namespace vw::soap
