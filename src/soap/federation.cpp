#include "soap/federation.hpp"

#include <charconv>
#include <stdexcept>

namespace vw::soap {

namespace {

std::uint32_t parse_u32(const std::string& s) {
  std::uint32_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("bad unsigned integer: " + s);
  }
  return value;
}

std::uint32_t attr_u32(const XmlNode& node, const std::string& key) {
  auto it = node.attributes.find(key);
  if (it == node.attributes.end()) {
    std::string what = node.name;
    what.append(": missing attribute '").append(key).append("'");
    throw std::invalid_argument(what);
  }
  return parse_u32(it->second);
}

}  // namespace

FederationService::FederationService(RpcRegistry& registry, std::string endpoint)
    : registry_(registry), endpoint_(std::move(endpoint)) {
  registry_.register_method(endpoint_, "Subscribe",
                            [this](const XmlNode& r) { return handle_subscribe(r); });
  registry_.register_method(endpoint_, "ExportSummary",
                            [this](const XmlNode& r) { return handle_export(r); });
  registry_.register_method(endpoint_, "RequestMeasurement",
                            [this](const XmlNode& r) { return handle_request(r); });
}

FederationService::~FederationService() { registry_.unregister_endpoint(endpoint_); }

XmlNode FederationService::handle_subscribe(const XmlNode& request) {
  const std::uint32_t region = attr_u32(request, "region");
  const std::string subscriber = request.child_text("subscriber");
  if (subscriber.empty()) {
    throw std::invalid_argument("Subscribe: missing subscriber endpoint");
  }
  const bool accepted = subscribe_ ? subscribe_(region, subscriber) : true;
  if (accepted) subscribers_[region] = subscriber;
  XmlNode resp;
  resp.name = "SubscribeResponse";
  resp.attributes["accepted"] = std::string(1, accepted ? '1' : '0');
  return resp;
}

XmlNode FederationService::handle_export(const XmlNode& request) {
  const std::uint32_t region = attr_u32(request, "region");
  const std::string payload = request.child_text("summary");
  if (payload.empty()) throw std::invalid_argument("ExportSummary: missing summary payload");
  ++exports_received_;
  if (export_) export_(region, payload);
  XmlNode resp;
  resp.name = "ExportSummaryResponse";
  return resp;
}

XmlNode FederationService::handle_request(const XmlNode& request) {
  const std::uint32_t from = attr_u32(request, "from");
  const std::uint32_t to = attr_u32(request, "to");
  ++requests_received_;
  const bool started = request_ ? request_(from, to) : false;
  XmlNode resp;
  resp.name = "RequestMeasurementResponse";
  resp.attributes["started"] = std::string(1, started ? '1' : '0');
  return resp;
}

FederationClient::FederationClient(const RpcRegistry& registry, std::string endpoint)
    : registry_(registry), endpoint_(std::move(endpoint)) {}

bool FederationClient::subscribe(std::uint32_t region, const std::string& subscriber) const {
  XmlNode request;
  request.name = "Subscribe";
  request.attributes["region"] = std::to_string(region);
  request.add_text_child("subscriber", subscriber);
  const XmlNode resp = registry_.call(endpoint_, "Subscribe", request);
  return resp.attributes.at("accepted") == "1";
}

void FederationClient::export_summary(std::uint32_t region, const std::string& summary_hex) const {
  XmlNode request;
  request.name = "ExportSummary";
  request.attributes["region"] = std::to_string(region);
  request.add_text_child("summary", summary_hex);
  registry_.call(endpoint_, "ExportSummary", request);
}

bool FederationClient::request_measurement(std::uint32_t from, std::uint32_t to) const {
  XmlNode request;
  request.name = "RequestMeasurement";
  request.attributes["from"] = std::to_string(from);
  request.attributes["to"] = std::to_string(to);
  const XmlNode resp = registry_.call(endpoint_, "RequestMeasurement", request);
  return resp.attributes.at("started") == "1";
}

}  // namespace vw::soap
