#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "soap/rpc.hpp"

// The telemetry SOAP surface — the system observing itself through the same
// RPC path the paper mandates for Wren's measurements:
//
//   QueryMetrics(prefix?)          -> snapshot of matching instruments
//   StreamEvents(since, max?)      -> trace events with monotone ids, so
//                                     clients page the stream incrementally
//                                     (same contract as Wren's
//                                     GetObservations)
//
// Every call round-trips through real XML envelopes via RpcRegistry.

namespace vw::soap {

class TelemetryService {
 public:
  /// `tracer` may be null (StreamEvents then faults with Client.NoTracer).
  TelemetryService(RpcRegistry& registry, obs::MetricsRegistry& metrics,
                   obs::EventTracer* tracer, std::string endpoint);
  ~TelemetryService();

  TelemetryService(const TelemetryService&) = delete;
  TelemetryService& operator=(const TelemetryService&) = delete;

  const std::string& endpoint() const { return endpoint_; }

 private:
  XmlNode handle_query_metrics(const XmlNode& request) const;
  XmlNode handle_stream_events(const XmlNode& request) const;

  RpcRegistry& registry_;
  obs::MetricsRegistry& metrics_;
  obs::EventTracer* tracer_;
  std::string endpoint_;
};

/// Client-side wrapper: re-materializes the snapshot / event batch from the
/// XML response.
class TelemetryClient {
 public:
  TelemetryClient(const RpcRegistry& registry, std::string endpoint);

  /// Matching instruments (all when `prefix` is empty).
  obs::MetricsSnapshot query_metrics(const std::string& prefix = {}) const;

  /// Events with id > since and the cursor for the next call.
  std::pair<std::vector<obs::TraceEvent>, std::uint64_t> stream_events(
      std::uint64_t since, std::size_t max_events = 1024) const;

 private:
  const RpcRegistry& registry_;
  std::string endpoint_;
};

}  // namespace vw::soap
