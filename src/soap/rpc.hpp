#pragma once

#include <functional>
#include <map>
#include <stdexcept>
#include <string>

#include "soap/xml.hpp"

// In-process SOAP RPC: services register method handlers; callers invoke by
// endpoint + method. Every call round-trips through real XML text (request
// and response are serialized and re-parsed), so the interface behaves like
// the paper's gSOAP deployment without sockets.

namespace vw::soap {

/// Thrown to the caller when the service responds with a SOAP Fault.
class SoapFault : public std::runtime_error {
 public:
  SoapFault(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

class RpcRegistry {
 public:
  /// A handler receives the request body element and returns a response body.
  using Handler = std::function<XmlNode(const XmlNode& request)>;

  /// Register `endpoint` (e.g. "wren://host3") method `method`.
  void register_method(const std::string& endpoint, const std::string& method, Handler handler);
  void unregister_endpoint(const std::string& endpoint);

  /// Invoke a method: builds an envelope, serializes, dispatches, parses the
  /// response envelope. Throws SoapFault when the service faults and
  /// std::out_of_range when the endpoint/method is unknown.
  XmlNode call(const std::string& endpoint, const std::string& method,
               const XmlNode& request) const;

  bool has_endpoint(const std::string& endpoint) const;

 private:
  std::map<std::pair<std::string, std::string>, Handler> handlers_;
};

}  // namespace vw::soap
