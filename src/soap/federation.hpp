#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "soap/rpc.hpp"

// The federation SOAP surface (DESIGN.md §5i) — the control channel between
// the measurement-plane tiers:
//
//   Subscribe(region, subscriber)   -> regional proxy announces itself to
//                                      the root (region id + the endpoint
//                                      demand hints should be pushed to)
//   ExportSummary(region, payload)  -> one hex-armored vw.fedsum.v1 summary
//                                      shipped upward
//   RequestMeasurement(from, to)    -> SONoMA-style on-demand session: the
//                                      planner asks the plane to measure a
//                                      cold pair; returns whether a session
//                                      was actually started
//
// The payloads are deliberately opaque here: soap stays a transport layer
// (it cannot depend on wren, which sits above it), so summaries cross as
// hex strings and hosts as raw u32 ids. wren::summary_from_hex() and
// net::NodeId give them meaning at the endpoints.

namespace vw::soap {

class FederationService {
 public:
  /// Returns whether the subscription was accepted.
  using SubscribeFn = std::function<bool(std::uint32_t region, const std::string& subscriber)>;
  /// Receives one hex-armored vw.fedsum.v1 summary.
  using ExportFn = std::function<void(std::uint32_t region, const std::string& summary_hex)>;
  /// Returns whether a measurement session was started for (from, to).
  using RequestFn = std::function<bool(std::uint32_t from, std::uint32_t to)>;

  FederationService(RpcRegistry& registry, std::string endpoint);
  ~FederationService();

  FederationService(const FederationService&) = delete;
  FederationService& operator=(const FederationService&) = delete;

  const std::string& endpoint() const { return endpoint_; }

  void set_subscribe_fn(SubscribeFn fn) { subscribe_ = std::move(fn); }
  void set_export_fn(ExportFn fn) { export_ = std::move(fn); }
  void set_request_fn(RequestFn fn) { request_ = std::move(fn); }

  /// region -> subscriber endpoint, as announced via Subscribe.
  const std::map<std::uint32_t, std::string>& subscribers() const { return subscribers_; }

  std::uint64_t exports_received() const { return exports_received_; }
  std::uint64_t requests_received() const { return requests_received_; }

 private:
  XmlNode handle_subscribe(const XmlNode& request);
  XmlNode handle_export(const XmlNode& request);
  XmlNode handle_request(const XmlNode& request);

  RpcRegistry& registry_;
  std::string endpoint_;
  SubscribeFn subscribe_;
  ExportFn export_;
  RequestFn request_;
  std::map<std::uint32_t, std::string> subscribers_;
  std::uint64_t exports_received_ = 0;
  std::uint64_t requests_received_ = 0;
};

/// Client-side wrapper (what a regional proxy or the planner holds).
class FederationClient {
 public:
  FederationClient(const RpcRegistry& registry, std::string endpoint);

  bool subscribe(std::uint32_t region, const std::string& subscriber) const;
  void export_summary(std::uint32_t region, const std::string& summary_hex) const;
  bool request_measurement(std::uint32_t from, std::uint32_t to) const;

 private:
  const RpcRegistry& registry_;
  std::string endpoint_;
};

}  // namespace vw::soap
