#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "soap/xml.hpp"
#include "transport/stack.hpp"
#include "transport/tcp.hpp"

// The VNET control plane: each daemon holds a TCP control connection to the
// Proxy and ships XML report messages upstream ("each VNET daemon
// periodically sends its inferred local traffic matrix to the VNET daemon
// on the Proxy"). The Proxy dispatches arriving documents to handlers by
// root element name. Reports from the Proxy host itself short-circuit
// (same daemon); everything else crosses the simulated network and pays
// real latency and bandwidth.

namespace vw::vnet {

class ControlPlane {
 public:
  using HandlerFn = std::function<void(const soap::XmlNode& message)>;

  /// Listens for daemon control connections on (proxy_host, port).
  ControlPlane(transport::TransportStack& stack, net::NodeId proxy_host,
               std::uint16_t port = 9001);
  ~ControlPlane();

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Proxy side: handle messages whose root element is `root_name`.
  void register_handler(const std::string& root_name, HandlerFn handler);

  /// Daemon side: send `message` from `host` to the Proxy. Establishes the
  /// host's control connection on first use. Messages from the Proxy host
  /// dispatch immediately without touching the network.
  void send(net::NodeId host, const soap::XmlNode& message);

  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t parse_failures() const { return parse_failures_; }
  /// Wire bytes of serialized reports sent over the network (control-plane
  /// overhead, §3.4).
  std::uint64_t bytes_shipped() const { return bytes_shipped_; }

 private:
  void dispatch(const std::string& doc);

  transport::TransportStack& stack_;
  net::NodeId proxy_host_;
  std::uint16_t port_;
  std::map<std::string, HandlerFn> handlers_;
  std::map<net::NodeId, transport::TcpConnection*> clients_;
  std::uint64_t delivered_ = 0;
  std::uint64_t parse_failures_ = 0;
  std::uint64_t bytes_shipped_ = 0;
};

}  // namespace vw::vnet
