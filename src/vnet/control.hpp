#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "obs/scope.hpp"
#include "soap/xml.hpp"
#include "transport/stack.hpp"
#include "transport/tcp.hpp"

// The VNET control plane: each daemon holds a TCP control connection to the
// Proxy and ships XML report messages upstream ("each VNET daemon
// periodically sends its inferred local traffic matrix to the VNET daemon
// on the Proxy"). The Proxy dispatches arriving documents to handlers by
// root element name. Reports from the Proxy host itself short-circuit
// (same daemon); everything else crosses the simulated network and pays
// real latency and bandwidth.
//
// Delivery robustness: the daemon side monitors each control connection
// (periodic health checks detect a closed socket, a handshake that never
// completes, or acknowledged-byte progress stalling with data in flight),
// tears a sick connection down, and reconnects with exponential backoff. A
// bounded per-daemon resend window keeps recent reports alive across the
// outage and replays the unacknowledged suffix on the fresh connection.
// Reports are idempotent state snapshots, so the resulting at-least-once
// delivery (a report whose bytes landed but whose ACK died in the outage is
// replayed) is safe; when the window overflows, the oldest report is
// dropped and counted. Dropping a report that was already ACKed is harmless
// (newer state supersedes it), but evicting one that never reached the
// Proxy is a *delivery hole*: after the outage the daemon replays a window
// whose oldest surviving entry is newer than the Proxy's last-applied
// state, and the lost snapshot is never re-sent. Such evictions are counted
// separately (window_gaps) and surfaced through a callback so the daemon
// can schedule a full re-report that heals the hole.

namespace vw::vnet {

struct ControlPlaneParams {
  SimTime health_check_period = millis(500);  ///< connection-health poll
  SimTime send_timeout = seconds(5.0);   ///< unacked data w/o progress => stall
  SimTime connect_timeout = seconds(10.0);  ///< handshake must finish by then
  SimTime backoff_initial = millis(500);    ///< first reconnect delay
  SimTime backoff_max = seconds(30.0);      ///< backoff ceiling
  double backoff_factor = 2.0;              ///< exponential growth
  std::size_t resend_window = 64;  ///< per-daemon messages kept for resend
};

class ControlPlane {
 public:
  using HandlerFn = std::function<void(const soap::XmlNode& message)>;
  /// Invoked when an *unacknowledged* message is evicted from `host`'s
  /// resend window (a delivery hole the replay cannot heal). Called after
  /// the triggering send() completes its own bookkeeping; the callback must
  /// not call send() synchronously — schedule the make-up report instead.
  using WindowGapFn = std::function<void(net::NodeId host)>;

  /// Listens for daemon control connections on (proxy_host, port).
  ControlPlane(transport::TransportStack& stack, net::NodeId proxy_host,
               std::uint16_t port = 9001, ControlPlaneParams params = {});
  ~ControlPlane();

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Proxy side: handle messages whose root element is `root_name`.
  void register_handler(const std::string& root_name, HandlerFn handler);

  /// Daemon side: send `message` from `host` to the Proxy. Establishes the
  /// host's control connection on first use; while the connection is down
  /// the message waits in the resend window and rides the next reconnect.
  /// Messages from the Proxy host dispatch immediately without touching the
  /// network.
  void send(net::NodeId host, const soap::XmlNode& message);

  /// Proxy side: observe delivery holes (full re-report scheduling).
  void set_on_window_gap(WindowGapFn fn) { window_gap_fn_ = std::move(fn); }

  /// Messages dispatched to a registered handler.
  std::uint64_t messages_delivered() const { return delivered_; }
  /// Serialized bytes of delivered messages whose root element was
  /// `root_name` (per-stream traffic accounting, e.g. the federation
  /// bench's summary-vs-report ratio).
  std::uint64_t delivered_bytes(const std::string& root_name) const;
  /// Messages that parsed but matched no handler (silently ignored types).
  std::uint64_t messages_unhandled() const { return unhandled_; }
  std::uint64_t parse_failures() const { return parse_failures_; }
  /// Wire bytes of serialized reports sent over the network (control-plane
  /// overhead, §3.4), including resends.
  std::uint64_t bytes_shipped() const { return bytes_shipped_; }

  // --- failure-handling introspection ----------------------------------------
  /// Connections torn down after a detected failure (close/stall/timeout).
  std::uint64_t disconnects() const { return disconnects_; }
  /// Replacement connections that completed their handshake.
  std::uint64_t reconnects() const { return reconnects_; }
  std::uint64_t reconnect_attempts() const { return reconnect_attempts_; }
  /// Messages re-shipped on a replacement connection.
  std::uint64_t messages_resent() const { return resends_; }
  /// Messages evicted from a full resend window (lost to the outage).
  std::uint64_t messages_dropped() const { return drops_; }
  /// The subset of evictions that were never acknowledged — permanent
  /// delivery holes unless a full re-report follows.
  std::uint64_t window_gaps() const { return window_gaps_; }
  /// Whether `host`'s control connection is currently established.
  bool connection_healthy(net::NodeId host) const;

  const ControlPlaneParams& params() const { return params_; }

  /// Attach telemetry (vnet.control.* counters).
  void set_obs(const obs::Scope& scope);

 private:
  struct OutboundMessage {
    std::string doc;
    std::uint64_t end_offset = 0;  ///< stream offset on the current conn; 0 = unsent
    std::uint32_t attempts = 0;    ///< transmissions so far (resend accounting)
  };

  struct ClientState {
    transport::TcpConnection* conn = nullptr;
    std::deque<OutboundMessage> window;  ///< unacked + queued, FIFO, bounded
    SimTime backoff = 0;                 ///< current reconnect delay (0 = healthy)
    sim::EventHandle reconnect_timer;
    SimTime attempt_started = 0;
    SimTime last_progress = 0;
    std::uint64_t last_acked = 0;
    bool ever_established = false;
  };

  sim::Simulator& sim() { return stack_.simulator(); }
  void dispatch(const std::string& doc);
  void transmit(ClientState& state, OutboundMessage& msg);
  void attempt_connect(net::NodeId host);
  void fail_connection(net::NodeId host, ClientState& state);
  void schedule_reconnect(net::NodeId host, ClientState& state);
  void health_tick();

  transport::TransportStack& stack_;
  net::NodeId proxy_host_;
  std::uint16_t port_;
  ControlPlaneParams params_;
  std::map<std::string, HandlerFn> handlers_;
  std::map<net::NodeId, ClientState> clients_;
  std::unique_ptr<sim::PeriodicTask> health_task_;
  WindowGapFn window_gap_fn_;
  std::map<std::string, std::uint64_t> delivered_bytes_by_type_;
  std::uint64_t delivered_ = 0;
  std::uint64_t unhandled_ = 0;
  std::uint64_t parse_failures_ = 0;
  std::uint64_t bytes_shipped_ = 0;
  std::uint64_t disconnects_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t reconnect_attempts_ = 0;
  std::uint64_t resends_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t window_gaps_ = 0;
  obs::Counter* c_delivered_ = nullptr;
  obs::Counter* c_unhandled_ = nullptr;
  obs::Counter* c_parse_failures_ = nullptr;
  obs::Counter* c_disconnects_ = nullptr;
  obs::Counter* c_reconnects_ = nullptr;
  obs::Counter* c_reconnect_attempts_ = nullptr;
  obs::Counter* c_resends_ = nullptr;
  obs::Counter* c_drops_ = nullptr;
  obs::Counter* c_window_gaps_ = nullptr;
};

}  // namespace vw::vnet
