#pragma once

#include <memory>

#include "transport/stack.hpp"
#include "transport/tcp.hpp"
#include "transport/udp.hpp"
#include "vnet/daemon.hpp"

// Concrete overlay links. A TCP link encapsulates frames as length-delimited
// messages on one connection (reliable, ordered, congestion-controlled —
// this is the traffic Wren observes between daemons). A virtual UDP link
// sends each frame as one datagram (unreliable, no head-of-line blocking).

namespace vw::vnet {

/// Bytes VNET prepends to each frame when encapsulating over a transport
/// connection (link header + length framing).
inline constexpr std::uint32_t kEncapsulationBytes = 8;

class TcpOverlayLink final : public OverlayLink {
 public:
  /// Wraps one endpoint of an established (or connecting) TCP connection.
  TcpOverlayLink(transport::TcpConnection& conn);

  void send(FramePtr frame) override;
  net::NodeId peer_host() const override { return conn_.remote_host(); }
  LinkProtocol protocol() const override { return LinkProtocol::kTcp; }
  net::FlowKey wire_flow() const override { return conn_.flow(); }

  transport::TcpConnection& connection() { return conn_; }

 private:
  transport::TcpConnection& conn_;
};

class UdpOverlayLink final : public OverlayLink {
 public:
  /// Owns a bound UDP socket and targets the peer daemon's socket.
  UdpOverlayLink(std::shared_ptr<transport::UdpSocket> socket, net::NodeId peer_host,
                 std::uint16_t peer_port);

  void send(FramePtr frame) override;
  net::NodeId peer_host() const override { return peer_host_; }
  LinkProtocol protocol() const override { return LinkProtocol::kUdp; }
  net::FlowKey wire_flow() const override {
    return net::FlowKey{socket_->host(), peer_host_, socket_->port(), peer_port_,
                        net::Protocol::kUdp};
  }

 private:
  std::shared_ptr<transport::UdpSocket> socket_;
  net::NodeId peer_host_;
  std::uint16_t peer_port_;
};

}  // namespace vw::vnet
