#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "transport/stack.hpp"
#include "vnet/daemon.hpp"
#include "vnet/links.hpp"

// The Overlay controller: creates daemons, bootstraps the always-maintained
// star topology around the Proxy, tracks which daemon hosts each VM MAC
// (updated on migration), and applies dynamic topology changes — extra
// links and forwarding rules — that VADAPT requests.

namespace vw::vnet {

class Overlay {
 public:
  explicit Overlay(transport::TransportStack& stack);
  ~Overlay();

  Overlay(const Overlay&) = delete;
  Overlay& operator=(const Overlay&) = delete;

  // --- deployment -----------------------------------------------------------
  /// The first daemon created with is_proxy=true becomes the Proxy.
  VnetDaemon& create_daemon(net::NodeId host, std::string name, bool is_proxy = false);

  /// Connect every non-proxy daemon to the Proxy and make that link each
  /// daemon's default route (the initial star that is always maintained).
  void bootstrap_star(LinkProtocol proto = LinkProtocol::kTcp);

  VnetDaemon& proxy();
  VnetDaemon& daemon_on(net::NodeId host);
  bool has_daemon_on(net::NodeId host) const { return by_host_.contains(host); }
  std::vector<VnetDaemon*> daemons();
  std::vector<net::NodeId> daemon_hosts() const;

  // --- VM MAC registry (the Proxy's network presence) ---------------------
  void register_vm(MacAddress mac, VnetDaemon& daemon);
  void unregister_vm(MacAddress mac);
  VnetDaemon* daemon_for_mac(MacAddress mac) const;

  // --- dynamic adaptation ops ------------------------------------------------
  /// Ensure a direct overlay link between two daemons exists; returns the
  /// (a-side, b-side) link ids. Idempotent.
  std::pair<LinkId, LinkId> ensure_link(VnetDaemon& a, VnetDaemon& b,
                                        LinkProtocol proto = LinkProtocol::kTcp);

  /// Install forwarding rules so frames for `dst_mac` follow `path`
  /// (a sequence of daemon hosts ending at the daemon hosting the VM),
  /// creating missing links along the way.
  void install_path(const std::vector<net::NodeId>& path, MacAddress dst_mac,
                    LinkProtocol proto = LinkProtocol::kTcp);

  /// Remove all non-star links and all forwarding rules (back to the star).
  void reset_to_star();

  std::size_t dynamic_link_count() const { return dynamic_links_.size(); }

  /// Attach telemetry (vnet.links.* / vnet.paths.* counters); forwards to
  /// every daemon, existing and future.
  void set_obs(const obs::Scope& scope);

 private:
  struct LinkRecord {
    VnetDaemon* a;
    VnetDaemon* b;
    LinkId a_side;
    LinkId b_side;
  };

  LinkRecord make_link(VnetDaemon& a, VnetDaemon& b, LinkProtocol proto);

  transport::TransportStack& stack_;
  std::vector<std::unique_ptr<VnetDaemon>> daemons_;
  std::map<net::NodeId, VnetDaemon*> by_host_;
  VnetDaemon* proxy_ = nullptr;
  std::map<MacAddress, VnetDaemon*> mac_registry_;
  std::vector<LinkRecord> star_links_;
  std::vector<LinkRecord> dynamic_links_;
  bool star_built_ = false;
  obs::Scope obs_;
  obs::Counter* c_links_added_ = nullptr;
  obs::Counter* c_links_removed_ = nullptr;
  obs::Counter* c_paths_installed_ = nullptr;
};

}  // namespace vw::vnet
