#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "transport/tcp.hpp"
#include "transport/udp.hpp"
#include "vnet/ethernet.hpp"

// The VNET daemon: one per physical host. It owns the host's overlay links
// (TCP or virtual-UDP connections to other daemons), a forwarding table of
// (destination MAC -> link) rules, and the attachments of local VM virtual
// interfaces. Every frame captured from a local VM is also handed to the
// VTTIF observer. The initial topology is a star around the Proxy daemon;
// VADAPT later adds direct links and rules.

namespace vw::vnet {

using LinkId = std::uint32_t;
inline constexpr LinkId kInvalidLink = 0xffffffffu;

enum class LinkProtocol : std::uint8_t { kTcp, kUdp };

class VnetDaemon;

/// One endpoint of an overlay link between two daemons.
class OverlayLink {
 public:
  using FrameFn = std::function<void(FramePtr)>;

  virtual ~OverlayLink() = default;
  virtual void send(FramePtr frame) = 0;
  virtual net::NodeId peer_host() const = 0;
  virtual LinkProtocol protocol() const = 0;
  /// The wire-level 5-tuple this endpoint's outgoing frames travel on
  /// (used to install physical-path reservations for the link).
  virtual net::FlowKey wire_flow() const = 0;

  void set_on_frame(FrameFn fn) { on_frame_ = std::move(fn); }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }

 protected:
  void deliver(FramePtr frame) {
    ++frames_received_;
    if (on_frame_) on_frame_(std::move(frame));
  }
  std::uint64_t frames_sent_ = 0;

 private:
  FrameFn on_frame_;
  std::uint64_t frames_received_ = 0;
};

class VnetDaemon {
 public:
  using VmDeliveryFn = std::function<void(FramePtr)>;
  /// VTTIF hook: frames captured from local VM interfaces.
  using FrameObserverFn = std::function<void(const EthernetFrame&)>;
  /// Resolves the daemon currently hosting a MAC (the Proxy's global
  /// knowledge, maintained by the Overlay controller).
  using MacResolverFn = std::function<VnetDaemon*(MacAddress)>;

  VnetDaemon(transport::TransportStack& stack, net::NodeId host, std::string name, bool is_proxy);
  ~VnetDaemon();

  VnetDaemon(const VnetDaemon&) = delete;
  VnetDaemon& operator=(const VnetDaemon&) = delete;

  // --- VM attachment -------------------------------------------------------
  void attach_vm(MacAddress mac, VmDeliveryFn deliver);
  void detach_vm(MacAddress mac);
  bool has_vm(MacAddress mac) const { return local_vms_.contains(mac); }

  /// Entry point for frames emitted by a local VM's virtual interface.
  void inject_from_vm(const EthernetFrame& frame);

  // --- link management (driven by the Overlay controller) -----------------
  LinkId register_link(std::unique_ptr<OverlayLink> link);
  void remove_link(LinkId id);
  bool has_link(LinkId id) const { return links_.contains(id); }
  /// Link whose far end is on `host`, if any.
  std::optional<LinkId> link_to_host(net::NodeId host) const;

  // --- forwarding rules -----------------------------------------------------
  void add_rule(MacAddress dst, LinkId out);
  void remove_rule(MacAddress dst);
  /// The star fallback: where frames with no matching rule go (proxy link).
  void set_default_link(LinkId id) { default_link_ = id; }
  LinkId default_link() const { return default_link_; }
  std::size_t rule_count() const { return rules_.size(); }

  // --- hooks / introspection ----------------------------------------------
  void set_frame_observer(FrameObserverFn fn) { frame_observer_ = std::move(fn); }
  void set_mac_resolver(MacResolverFn fn) { mac_resolver_ = std::move(fn); }

  net::NodeId host() const { return host_; }
  const std::string& name() const { return name_; }
  bool is_proxy() const { return is_proxy_; }

  /// Federation region this daemon reports into (DESIGN.md §5i). Region 0
  /// is the default single-region (flat) plane; the bootstrap redirects the
  /// daemon's report stream to its region's proxy based on this.
  void set_region(std::uint32_t region) { region_ = region; }
  std::uint32_t region() const { return region_; }
  std::uint64_t frames_forwarded() const { return frames_forwarded_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

  /// Attach telemetry (vnet.frames.* and vnet.rules.* counters, shared by
  /// all daemons wired to the same scope).
  void set_obs(const obs::Scope& scope);

  /// Read-only view of the daemon's overlay links (diagnostics).
  std::vector<std::pair<LinkId, const OverlayLink*>> links() const {
    std::vector<std::pair<LinkId, const OverlayLink*>> out;
    for (const auto& [id, link] : links_) out.push_back({id, link.get()});
    return out;
  }
  transport::TransportStack& stack() { return stack_; }

  /// Deliver or forward a frame that arrived over an overlay link.
  void handle_from_link(FramePtr frame);

 private:
  void route(FramePtr frame);

  transport::TransportStack& stack_;
  net::NodeId host_;
  std::string name_;
  bool is_proxy_;
  std::uint32_t region_ = 0;
  std::map<MacAddress, VmDeliveryFn> local_vms_;
  std::map<LinkId, std::unique_ptr<OverlayLink>> links_;
  std::map<MacAddress, LinkId> rules_;
  LinkId default_link_ = kInvalidLink;
  LinkId next_link_id_ = 0;
  FrameObserverFn frame_observer_;
  MacResolverFn mac_resolver_;
  std::uint64_t frames_forwarded_ = 0;
  std::uint64_t frames_dropped_ = 0;
  obs::Counter* c_forwarded_ = nullptr;
  obs::Counter* c_dropped_ = nullptr;
  obs::Counter* c_rules_added_ = nullptr;
  obs::Counter* c_rules_removed_ = nullptr;
};

}  // namespace vw::vnet
