#include "vnet/overlay.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace vw::vnet {

Overlay::Overlay(transport::TransportStack& stack) : stack_(stack) {}

Overlay::~Overlay() = default;

void Overlay::set_obs(const obs::Scope& scope) {
  obs_ = scope;
  c_links_added_ = scope.counter("vnet.links.added");
  c_links_removed_ = scope.counter("vnet.links.removed");
  c_paths_installed_ = scope.counter("vnet.paths.installed");
  for (auto& d : daemons_) d->set_obs(scope);
}

VnetDaemon& Overlay::create_daemon(net::NodeId host, std::string name, bool is_proxy) {
  VW_REQUIRE(!by_host_.contains(host), "Overlay: daemon already on host ", host);
  VW_REQUIRE(!is_proxy || proxy_ == nullptr, "Overlay: proxy already exists");
  auto daemon = std::make_unique<VnetDaemon>(stack_, host, std::move(name), is_proxy);
  VnetDaemon* raw = daemon.get();
  if (obs_.enabled()) raw->set_obs(obs_);
  daemons_.push_back(std::move(daemon));
  by_host_[host] = raw;
  if (is_proxy) {
    proxy_ = raw;
    proxy_->set_mac_resolver([this](MacAddress mac) { return daemon_for_mac(mac); });
  }
  return *raw;
}

VnetDaemon& Overlay::proxy() {
  VW_REQUIRE(proxy_ != nullptr, "Overlay: no proxy daemon");
  return *proxy_;
}

VnetDaemon& Overlay::daemon_on(net::NodeId host) {
  auto it = by_host_.find(host);
  VW_REQUIRE(it != by_host_.end(), "Overlay: no daemon on host ", host);
  return *it->second;
}

std::vector<VnetDaemon*> Overlay::daemons() {
  std::vector<VnetDaemon*> out;
  out.reserve(daemons_.size());
  for (auto& d : daemons_) out.push_back(d.get());
  return out;
}

std::vector<net::NodeId> Overlay::daemon_hosts() const {
  std::vector<net::NodeId> out;
  out.reserve(by_host_.size());
  for (const auto& [host, daemon] : by_host_) out.push_back(host);
  return out;
}

Overlay::LinkRecord Overlay::make_link(VnetDaemon& a, VnetDaemon& b, LinkProtocol proto) {
  LinkRecord rec{&a, &b, kInvalidLink, kInvalidLink};
  if (proto == LinkProtocol::kTcp) {
    // b listens on a fresh port; a connects. The handshake completes via
    // simulator events *after* the caller has pushed this record into
    // star_links_/dynamic_links_, so the accept callback locates the pending
    // record (matched by daemon pair, b-side unset) and fills in b_side.
    const std::uint16_t port = stack_.ephemeral_port(b.host());
    VnetDaemon* a_ptr = &a;
    VnetDaemon* b_ptr = &b;
    stack_.tcp_listen(b.host(), port, [this, a_ptr, b_ptr](transport::TcpConnection& conn) {
      auto finish = [&](std::vector<LinkRecord>& list) {
        for (auto& r : list) {
          if (r.a == a_ptr && r.b == b_ptr && r.b_side == kInvalidLink) {
            r.b_side = b_ptr->register_link(std::make_unique<TcpOverlayLink>(conn));
            return true;
          }
        }
        return false;
      };
      if (!finish(dynamic_links_)) finish(star_links_);
    });
    auto& client = stack_.tcp_connect(a.host(), b.host(), port);
    rec.a_side = a.register_link(std::make_unique<TcpOverlayLink>(client));
  } else {
    const std::uint16_t port_a = stack_.ephemeral_port(a.host());
    const std::uint16_t port_b = stack_.ephemeral_port(b.host());
    auto sock_a = stack_.udp_bind(a.host(), port_a);
    auto sock_b = stack_.udp_bind(b.host(), port_b);
    rec.a_side = a.register_link(std::make_unique<UdpOverlayLink>(sock_a, b.host(), port_b));
    rec.b_side = b.register_link(std::make_unique<UdpOverlayLink>(sock_b, a.host(), port_a));
  }
  return rec;
}

void Overlay::bootstrap_star(LinkProtocol proto) {
  VW_REQUIRE(!star_built_, "Overlay: star already built");
  VnetDaemon& hub = proxy();
  for (auto& d : daemons_) {
    if (d.get() == &hub) continue;
    LinkRecord rec = make_link(*d, hub, proto);
    VW_ASSERT(rec.a_side != kInvalidLink, "Overlay: star link has no spoke side");
    d->set_default_link(rec.a_side);
    star_links_.push_back(rec);
  }
  star_built_ = true;
  VW_ENSURE(star_links_.size() + 1 == daemons_.size(),
            "Overlay: star must connect every non-proxy daemon to the hub");
}

void Overlay::register_vm(MacAddress mac, VnetDaemon& daemon) { mac_registry_[mac] = &daemon; }

void Overlay::unregister_vm(MacAddress mac) { mac_registry_.erase(mac); }

VnetDaemon* Overlay::daemon_for_mac(MacAddress mac) const {
  auto it = mac_registry_.find(mac);
  return it == mac_registry_.end() ? nullptr : it->second;
}

std::pair<LinkId, LinkId> Overlay::ensure_link(VnetDaemon& a, VnetDaemon& b, LinkProtocol proto) {
  // Existing direct link (star or dynamic) in either orientation?
  if (auto a_side = a.link_to_host(b.host())) {
    auto b_side = b.link_to_host(a.host());
    return {*a_side, b_side.value_or(kInvalidLink)};
  }
  VW_REQUIRE(&a != &b, "Overlay::ensure_link: self link");
  LinkRecord rec = make_link(a, b, proto);
  VW_ENSURE(rec.a_side != kInvalidLink, "Overlay::ensure_link: link creation failed");
  dynamic_links_.push_back(rec);
  obs::add(c_links_added_);
  return {rec.a_side, rec.b_side};
}

void Overlay::install_path(const std::vector<net::NodeId>& path, MacAddress dst_mac,
                           LinkProtocol proto) {
  if (path.size() < 2) return;
  // A forwarding loop would bounce frames between daemons forever.
  VW_AUDIT([&path] {
    for (std::size_t i = 0; i < path.size(); ++i) {
      for (std::size_t j = i + 1; j < path.size(); ++j) {
        if (path[i] == path[j]) return false;
      }
    }
    return true;
  }(),
           "Overlay::install_path: repeated host in path (forwarding loop)");
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    VnetDaemon& from = daemon_on(path[i]);
    VnetDaemon& to = daemon_on(path[i + 1]);
    auto [from_side, to_side] = ensure_link(from, to, proto);
    from.add_rule(dst_mac, from_side);
  }
  obs::add(c_paths_installed_);
}

void Overlay::reset_to_star() {
  for (const LinkRecord& rec : dynamic_links_) {
    rec.a->remove_link(rec.a_side);  // also erases rules referencing the link
    if (rec.b_side != kInvalidLink) rec.b->remove_link(rec.b_side);
  }
  obs::add(c_links_removed_, dynamic_links_.size());
  dynamic_links_.clear();
  // Remove any rules that pointed at star links too.
  std::vector<MacAddress> macs;
  macs.reserve(mac_registry_.size());
  for (const auto& [mac, daemon] : mac_registry_) macs.push_back(mac);
  for (auto& d : daemons_) {
    for (MacAddress mac : macs) d->remove_rule(mac);
  }
}

}  // namespace vw::vnet
