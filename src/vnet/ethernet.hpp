#pragma once

#include <any>
#include <cstdint>
#include <memory>

// The Ethernet frame model VNET forwards. VNET operates below the VM: it
// captures raw frames from the VM's virtual interface and moves them between
// daemons, so everything above (IP inside the guest, applications) is opaque
// payload. Frames carry an optional message-fragment header used by the VM
// layer to reassemble application messages.

namespace vw::vnet {

using MacAddress = std::uint64_t;
inline constexpr MacAddress kBroadcastMac = 0xffffffffffffull;

inline constexpr std::uint32_t kEthernetHeaderBytes = 14;
inline constexpr std::uint32_t kEthernetMtu = 1500;  ///< max payload per frame

/// Application-message fragment metadata (stands in for bytes inside the
/// frame payload; the VM layer uses it to reassemble messages).
struct FragmentInfo {
  std::uint64_t message_id = 0;
  std::uint64_t offset = 0;
  std::uint64_t message_bytes = 0;
  std::any tag;  ///< application tag delivered with the completed message
};

struct EthernetFrame {
  MacAddress src_mac = 0;
  MacAddress dst_mac = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t ttl = 16;  ///< overlay hop budget (guards against rule loops)
  FragmentInfo fragment;

  std::uint32_t wire_bytes() const { return payload_bytes + kEthernetHeaderBytes; }
};

using FramePtr = std::shared_ptr<const EthernetFrame>;

}  // namespace vw::vnet
