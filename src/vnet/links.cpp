#include "vnet/links.hpp"

#include <utility>

namespace vw::vnet {

TcpOverlayLink::TcpOverlayLink(transport::TcpConnection& conn) : conn_(conn) {
  conn_.set_on_message([this](std::uint64_t, const std::any& tag) {
    deliver(std::any_cast<FramePtr>(tag));
  });
}

void TcpOverlayLink::send(FramePtr frame) {
  ++frames_sent_;
  const std::uint64_t bytes = frame->wire_bytes() + kEncapsulationBytes;
  conn_.send(bytes, std::any(std::move(frame)));
}

UdpOverlayLink::UdpOverlayLink(std::shared_ptr<transport::UdpSocket> socket,
                               net::NodeId peer_host, std::uint16_t peer_port)
    : socket_(std::move(socket)), peer_host_(peer_host), peer_port_(peer_port) {
  socket_->set_on_receive([this](net::Packet&& pkt) {
    if (!pkt.user_data) return;
    // The sender created user_data uniquely for this datagram, so the frame
    // pointer can be moved out: the only refcount traffic for the whole
    // end-to-end delivery is the send-side wrap.
    deliver(std::any_cast<FramePtr>(std::move(*pkt.user_data)));
  });
}

void UdpOverlayLink::send(FramePtr frame) {
  ++frames_sent_;
  const std::uint32_t bytes = frame->wire_bytes() + kEncapsulationBytes;
  socket_->send_to(peer_host_, peer_port_, bytes,
                   std::make_shared<std::any>(std::move(frame)));
}

}  // namespace vw::vnet
