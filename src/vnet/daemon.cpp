#include "vnet/daemon.hpp"

namespace vw::vnet {

VnetDaemon::VnetDaemon(transport::TransportStack& stack, net::NodeId host, std::string name,
                       bool is_proxy)
    : stack_(stack), host_(host), name_(std::move(name)), is_proxy_(is_proxy) {}

VnetDaemon::~VnetDaemon() = default;

void VnetDaemon::set_obs(const obs::Scope& scope) {
  c_forwarded_ = scope.counter("vnet.frames.forwarded");
  c_dropped_ = scope.counter("vnet.frames.dropped");
  c_rules_added_ = scope.counter("vnet.rules.added");
  c_rules_removed_ = scope.counter("vnet.rules.removed");
}

void VnetDaemon::attach_vm(MacAddress mac, VmDeliveryFn deliver) {
  local_vms_[mac] = std::move(deliver);
}

void VnetDaemon::detach_vm(MacAddress mac) { local_vms_.erase(mac); }

void VnetDaemon::inject_from_vm(const EthernetFrame& frame) {
  // VTTIF examines every Ethernet packet the daemon receives from a local VM.
  if (frame_observer_) frame_observer_(frame);
  route(std::make_shared<const EthernetFrame>(frame));
}

void VnetDaemon::handle_from_link(FramePtr frame) {
  if (frame->ttl == 0) {
    ++frames_dropped_;
    obs::add(c_dropped_);
    return;
  }
  auto decremented = std::make_shared<EthernetFrame>(*frame);
  --decremented->ttl;
  route(std::move(decremented));
}

void VnetDaemon::route(FramePtr frame) {
  // 1. Local delivery.
  if (auto it = local_vms_.find(frame->dst_mac); it != local_vms_.end()) {
    it->second(std::move(frame));
    return;
  }
  // 2. Explicit forwarding rule.
  if (auto it = rules_.find(frame->dst_mac); it != rules_.end()) {
    if (auto lit = links_.find(it->second); lit != links_.end()) {
      ++frames_forwarded_;
      obs::add(c_forwarded_);
      lit->second->send(std::move(frame));
      return;
    }
  }
  // 3. The Proxy resolves the hosting daemon from its global VM registry.
  if (is_proxy_ && mac_resolver_) {
    if (VnetDaemon* target = mac_resolver_(frame->dst_mac); target != nullptr && target != this) {
      if (auto link = link_to_host(target->host())) {
        ++frames_forwarded_;
        obs::add(c_forwarded_);
        links_.at(*link)->send(std::move(frame));
        return;
      }
    }
  }
  // 4. Star fallback: toward the Proxy.
  if (auto it = links_.find(default_link_); it != links_.end()) {
    ++frames_forwarded_;
    obs::add(c_forwarded_);
    it->second->send(std::move(frame));
    return;
  }
  ++frames_dropped_;
  obs::add(c_dropped_);
}

LinkId VnetDaemon::register_link(std::unique_ptr<OverlayLink> link) {
  const LinkId id = next_link_id_++;
  link->set_on_frame([this](FramePtr f) { handle_from_link(std::move(f)); });
  links_[id] = std::move(link);
  return id;
}

void VnetDaemon::remove_link(LinkId id) {
  links_.erase(id);
  if (default_link_ == id) default_link_ = kInvalidLink;
  for (auto it = rules_.begin(); it != rules_.end();) {
    it = (it->second == id) ? rules_.erase(it) : std::next(it);
  }
}

std::optional<LinkId> VnetDaemon::link_to_host(net::NodeId host) const {
  for (const auto& [id, link] : links_) {
    if (link->peer_host() == host) return id;
  }
  return std::nullopt;
}

void VnetDaemon::add_rule(MacAddress dst, LinkId out) {
  rules_[dst] = out;
  obs::add(c_rules_added_);
}

void VnetDaemon::remove_rule(MacAddress dst) {
  if (rules_.erase(dst) > 0) obs::add(c_rules_removed_);
}

}  // namespace vw::vnet
