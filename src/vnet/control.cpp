#include "vnet/control.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace vw::vnet {

ControlPlane::ControlPlane(transport::TransportStack& stack, net::NodeId proxy_host,
                           std::uint16_t port, ControlPlaneParams params)
    : stack_(stack), proxy_host_(proxy_host), port_(port), params_(params) {
  VW_REQUIRE(params_.backoff_factor >= 1.0, "ControlPlane: backoff factor must be >= 1, got ",
             params_.backoff_factor);
  VW_REQUIRE(params_.resend_window >= 1, "ControlPlane: resend window must hold >= 1 message");
  stack_.tcp_listen(proxy_host_, port_, [this](transport::TcpConnection& conn) {
    conn.set_on_message([this](std::uint64_t, const std::any& tag) {
      if (const auto* doc = std::any_cast<std::string>(&tag)) dispatch(*doc);
    });
  });
  health_task_ = std::make_unique<sim::PeriodicTask>(
      sim(), params_.health_check_period, [this] { health_tick(); });
}

ControlPlane::~ControlPlane() {
  health_task_.reset();
  for (auto& [host, state] : clients_) {
    sim().cancel(state.reconnect_timer);
    if (state.conn != nullptr) {
      // Destroys both endpoints so no pending network event can call back
      // into this object after it is gone.
      stack_.tcp_close(*state.conn);
      state.conn = nullptr;
    }
  }
  stack_.tcp_unlisten(proxy_host_, port_);
}

void ControlPlane::set_obs(const obs::Scope& scope) {
  c_delivered_ = scope.counter("vnet.control.delivered");
  c_unhandled_ = scope.counter("vnet.control.unhandled");
  c_parse_failures_ = scope.counter("vnet.control.parse_failures");
  c_disconnects_ = scope.counter("vnet.control.disconnects");
  c_reconnects_ = scope.counter("vnet.control.reconnects");
  c_reconnect_attempts_ = scope.counter("vnet.control.reconnect_attempts");
  c_resends_ = scope.counter("vnet.control.resends");
  c_drops_ = scope.counter("vnet.control.drops");
  c_window_gaps_ = scope.counter("vnet.control.window_gaps");
}

std::uint64_t ControlPlane::delivered_bytes(const std::string& root_name) const {
  auto it = delivered_bytes_by_type_.find(root_name);
  return it == delivered_bytes_by_type_.end() ? 0 : it->second;
}

void ControlPlane::register_handler(const std::string& root_name, HandlerFn handler) {
  handlers_[root_name] = std::move(handler);
}

void ControlPlane::dispatch(const std::string& doc) {
  soap::XmlNode message;
  try {
    message = soap::parse_xml(doc);
  } catch (const std::exception&) {
    ++parse_failures_;
    obs::add(c_parse_failures_);
    return;
  }
  auto it = handlers_.find(message.name);
  if (it == handlers_.end()) {
    // A report type nobody listens for is not a delivery — count it where
    // operators can see it instead of silently absorbing it.
    ++unhandled_;
    obs::add(c_unhandled_);
    return;
  }
  ++delivered_;
  obs::add(c_delivered_);
  delivered_bytes_by_type_[message.name] += doc.size();
  it->second(message);
}

bool ControlPlane::connection_healthy(net::NodeId host) const {
  if (host == proxy_host_) return true;
  auto it = clients_.find(host);
  return it != clients_.end() && it->second.conn != nullptr &&
         it->second.conn->established();
}

void ControlPlane::transmit(ClientState& state, OutboundMessage& msg) {
  if (msg.attempts > 0) {
    ++resends_;
    obs::add(c_resends_);
  }
  ++msg.attempts;
  bytes_shipped_ += msg.doc.size();
  state.conn->send(msg.doc.size(), std::any(msg.doc));
  msg.end_offset = state.conn->bytes_buffered();
}

void ControlPlane::send(net::NodeId host, const soap::XmlNode& message) {
  const std::string doc = soap::to_xml(message);
  if (host == proxy_host_) {
    // The Proxy's own daemon reports locally.
    dispatch(doc);
    return;
  }
  ClientState& state = clients_[host];
  bool gap = false;
  if (state.window.size() >= params_.resend_window) {
    // Oldest report gives way. If it was already acknowledged this is pure
    // housekeeping; if not, its state never reached the Proxy and the
    // replay window will never contain it again — a permanent hole unless
    // the owner schedules a full re-report.
    const OutboundMessage& victim = state.window.front();
    if (victim.end_offset == 0 || victim.end_offset > state.last_acked) {
      gap = true;
      ++window_gaps_;
      obs::add(c_window_gaps_);
    }
    state.window.pop_front();
    ++drops_;
    obs::add(c_drops_);
  }
  state.window.push_back(OutboundMessage{doc});
  if (state.conn != nullptr && state.conn->state() == transport::TcpConnection::State::kClosed) {
    // Detected between health ticks (e.g. the handshake gave up): recycle
    // now so the fresh message rides the reconnect.
    fail_connection(host, state);
    if (gap && window_gap_fn_) window_gap_fn_(host);
    return;
  }
  if (state.conn == nullptr) {
    // First use, or a failed connection waiting out its backoff.
    if (!state.reconnect_timer.valid()) attempt_connect(host);
    if (gap && window_gap_fn_) window_gap_fn_(host);
    return;
  }
  // TcpConnection buffers until established, so sending while the handshake
  // is still in flight is fine.
  transmit(state, state.window.back());
  if (gap && window_gap_fn_) window_gap_fn_(host);
}

void ControlPlane::attempt_connect(net::NodeId host) {
  ClientState& state = clients_[host];
  state.reconnect_timer = sim::EventHandle{};
  const bool is_reconnect = state.ever_established || state.attempt_started > 0;
  if (is_reconnect) {
    ++reconnect_attempts_;
    obs::add(c_reconnect_attempts_);
  }
  state.conn = &stack_.tcp_connect(host, proxy_host_, port_);
  state.attempt_started = sim().now();
  state.last_progress = sim().now();
  state.last_acked = 0;
  state.conn->set_on_established([this, host, is_reconnect] {
    ClientState& s = clients_[host];
    s.ever_established = true;
    s.backoff = 0;
    s.last_progress = sim().now();
    if (is_reconnect) {
      ++reconnects_;
      obs::add(c_reconnects_);
    }
  });
  // Replay the whole resend window in order (TCP queues until established).
  for (OutboundMessage& msg : state.window) transmit(state, msg);
}

void ControlPlane::fail_connection(net::NodeId host, ClientState& state) {
  ++disconnects_;
  obs::add(c_disconnects_);
  if (state.conn != nullptr) {
    transport::TcpConnection* dead = state.conn;
    state.conn = nullptr;
    stack_.tcp_close(*dead);
  }
  // Everything unacknowledged is presumed lost with the connection and will
  // be replayed on the next one.
  for (OutboundMessage& msg : state.window) msg.end_offset = 0;
  state.last_acked = 0;
  schedule_reconnect(host, state);
}

void ControlPlane::schedule_reconnect(net::NodeId host, ClientState& state) {
  state.backoff = state.backoff <= 0
                      ? params_.backoff_initial
                      : std::min(params_.backoff_max,
                                 static_cast<SimTime>(static_cast<double>(state.backoff) *
                                                      params_.backoff_factor));
  state.reconnect_timer = sim().schedule_in(state.backoff, [this, host] {
    attempt_connect(host);
  });
}

void ControlPlane::health_tick() {
  const SimTime now = sim().now();
  for (auto& [host, state] : clients_) {
    if (state.conn == nullptr) continue;  // waiting out a backoff
    // Acknowledged-byte progress both prunes the resend window and proves
    // the connection alive.
    const std::uint64_t acked = state.conn->bytes_acked();
    if (acked > state.last_acked) {
      state.last_acked = acked;
      state.last_progress = now;
      while (!state.window.empty() && state.window.front().end_offset > 0 &&
             state.window.front().end_offset <= acked) {
        state.window.pop_front();
      }
    }
    if (state.conn->state() == transport::TcpConnection::State::kClosed) {
      fail_connection(host, state);
      continue;
    }
    if (!state.conn->established()) {
      if (now - state.attempt_started > params_.connect_timeout) {
        fail_connection(host, state);
      }
      continue;
    }
    if (state.conn->bytes_in_flight() > 0 &&
        now - state.last_progress > params_.send_timeout) {
      fail_connection(host, state);
    }
  }
}

}  // namespace vw::vnet
