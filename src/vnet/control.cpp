#include "vnet/control.hpp"

#include <stdexcept>

namespace vw::vnet {

ControlPlane::ControlPlane(transport::TransportStack& stack, net::NodeId proxy_host,
                           std::uint16_t port)
    : stack_(stack), proxy_host_(proxy_host), port_(port) {
  stack_.tcp_listen(proxy_host_, port_, [this](transport::TcpConnection& conn) {
    conn.set_on_message([this](std::uint64_t, const std::any& tag) {
      if (const auto* doc = std::any_cast<std::string>(&tag)) dispatch(*doc);
    });
  });
}

ControlPlane::~ControlPlane() { stack_.tcp_unlisten(proxy_host_, port_); }

void ControlPlane::register_handler(const std::string& root_name, HandlerFn handler) {
  handlers_[root_name] = std::move(handler);
}

void ControlPlane::dispatch(const std::string& doc) {
  soap::XmlNode message;
  try {
    message = soap::parse_xml(doc);
  } catch (const std::exception&) {
    ++parse_failures_;
    return;
  }
  ++delivered_;
  if (auto it = handlers_.find(message.name); it != handlers_.end()) {
    it->second(message);
  }
}

void ControlPlane::send(net::NodeId host, const soap::XmlNode& message) {
  const std::string doc = soap::to_xml(message);
  if (host == proxy_host_) {
    // The Proxy's own daemon reports locally.
    dispatch(doc);
    return;
  }
  auto it = clients_.find(host);
  if (it == clients_.end()) {
    transport::TcpConnection& conn = stack_.tcp_connect(host, proxy_host_, port_);
    it = clients_.emplace(host, &conn).first;
  }
  bytes_shipped_ += doc.size();
  it->second->send(doc.size(), std::any(doc));
}

}  // namespace vw::vnet
